#include "baselines/confident_learning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace enld {

void ConfidentLearningDetector::Setup(const Dataset& inventory) {
  general_ = InitGeneralModel(inventory, config_);
}

DetectionResult ConfidentLearningDetector::Detect(
    const Dataset& incremental) {
  ENLD_CHECK(general_.model != nullptr);  // Setup must run first.
  MlpModel* model = general_.model.get();

  // Estimate the confident joint over I_c together with the arriving
  // dataset (Section V-A4: "validate on I_c together with D_i").
  Dataset combined = general_.candidate_set;
  combined.Append(incremental);
  const JointCounts joint = EstimateConfidentJoint(model, combined);

  const Matrix probs = model->Probabilities(incremental.features);
  const int classes = incremental.num_classes;

  std::vector<bool> is_noisy(incremental.size(), false);

  // Positions of D grouped by observed class.
  std::vector<std::vector<size_t>> by_class(classes);
  for (size_t i = 0; i < incremental.size(); ++i) {
    const int y = incremental.observed_labels[i];
    if (y != kMissingLabel) by_class[y].push_back(i);
  }

  for (int i = 0; i < classes; ++i) {
    if (by_class[i].empty()) continue;
    double row_sum = 0.0;
    for (int j = 0; j < classes; ++j) row_sum += joint[i][j];
    if (row_sum <= 0.0) continue;

    if (variant_ == ClVariant::kPruneByClass) {
      // Remove the n_i least self-confident samples of class i, where n_i
      // is the estimated off-diagonal fraction of the row.
      const double noise_frac = (row_sum - joint[i][i]) / row_sum;
      const size_t n_i = static_cast<size_t>(
          std::lround(noise_frac * static_cast<double>(by_class[i].size())));
      if (n_i == 0) continue;
      std::vector<size_t> order = by_class[i];
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return probs(a, i) < probs(b, i);
      });
      for (size_t r = 0; r < std::min(n_i, order.size()); ++r) {
        is_noisy[order[r]] = true;
      }
    } else {
      // Per off-diagonal cell (i, j): remove the n_ij samples of class i
      // with the largest margin toward class j.
      for (int j = 0; j < classes; ++j) {
        if (j == i) continue;
        const size_t n_ij = static_cast<size_t>(std::lround(
            joint[i][j] / row_sum * static_cast<double>(by_class[i].size())));
        if (n_ij == 0) continue;
        std::vector<size_t> order = by_class[i];
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return probs(a, j) - probs(a, i) > probs(b, j) - probs(b, i);
        });
        for (size_t r = 0; r < std::min(n_ij, order.size()); ++r) {
          is_noisy[order[r]] = true;
        }
      }
    }
  }

  DetectionResult result;
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] == kMissingLabel) continue;
    if (is_noisy[i]) {
      result.noisy_indices.push_back(i);
    } else {
      result.clean_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
