#ifndef ENLD_BASELINES_CO_TEACHING_H_
#define ENLD_BASELINES_CO_TEACHING_H_

#include <string>

#include "baselines/detector.h"
#include "nn/model_zoo.h"

namespace enld {

/// Configuration of the Co-teaching baseline (Han et al. 2018, adapted to
/// the incremental setting).
struct CoTeachingConfig {
  Backbone backbone = Backbone::kResNet110Sim;
  size_t epochs = 8;
  size_t batch_size = 64;
  double learning_rate = 0.05;
  double weight_decay = 0.01;
  /// Epochs over which the kept-fraction schedule R(t) anneals from 1 down
  /// to 1 - forget_rate (the paper's T_k).
  size_t anneal_epochs = 6;
  /// Fraction of each batch eventually dropped as suspected-noisy. When
  /// negative, the detector estimates it from a 1-D 2-means split of the
  /// first-epoch losses.
  double forget_rate = -1.0;
  uint64_t seed = 613;
};

/// Co-teaching: two networks train simultaneously on the related inventory
/// subset + D; in every batch each network selects its smallest-loss
/// samples and the *peer* updates on them, so the two networks filter each
/// other's noise. A sample of D is flagged noisy when both trained networks
/// disagree with its observed label.
class CoTeachingDetector : public NoisyLabelDetector {
 public:
  explicit CoTeachingDetector(const CoTeachingConfig& config)
      : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "coteaching"; }
  std::string display_name() const override { return "Co-teaching"; }

 private:
  CoTeachingConfig config_;
  Dataset inventory_;
  uint64_t request_counter_ = 0;
};

}  // namespace enld

#endif  // ENLD_BASELINES_CO_TEACHING_H_
