#ifndef ENLD_BASELINES_O2U_H_
#define ENLD_BASELINES_O2U_H_

#include <string>

#include "baselines/detector.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"

namespace enld {

/// Configuration of the O2U-Net-style loss-tracking baseline
/// (Huang et al. 2019, adapted to the incremental setting).
struct O2UConfig {
  Backbone backbone = Backbone::kResNet110Sim;
  /// Number of cyclical learning-rate rounds.
  size_t cycles = 3;
  /// Epochs per round; the learning rate decays linearly from `lr_max` to
  /// `lr_min` within each round, then jumps back (the "overfitting to
  /// underfitting" oscillation the method is named after).
  size_t epochs_per_cycle = 3;
  double lr_max = 0.05;
  double lr_min = 0.005;
  size_t batch_size = 64;
  /// Strong decay curbs memorization of the noisy labels, which would
  /// equalize the tracked losses and hide the noise.
  double weight_decay = 0.01;
  uint64_t seed = 509;
};

/// O2U-Net: train on the related inventory subset + D with a cyclical
/// learning rate and record every sample's loss after each epoch. Samples
/// whose *mean tracked loss* lands in the high cluster of a 1-D 2-means
/// split are flagged noisy (mislabeled samples stay hard through the
/// oscillation, so their average loss stays high).
///
/// Another training-per-request method: accuracy from training, process
/// cost comparable to Topofilter.
class O2UDetector : public NoisyLabelDetector {
 public:
  explicit O2UDetector(const O2UConfig& config) : config_(config) {}

  void Setup(const Dataset& inventory) override;
  DetectionResult Detect(const Dataset& incremental) override;
  std::string name() const override { return "o2u"; }
  std::string display_name() const override { return "O2U-Net"; }

 private:
  O2UConfig config_;
  Dataset inventory_;
  uint64_t request_counter_ = 0;
};

}  // namespace enld

#endif  // ENLD_BASELINES_O2U_H_
