#include "baselines/topofilter.h"

#include <algorithm>

#include "baselines/related.h"
#include "common/check.h"
#include "common/rng.h"
#include "graph/knn_graph.h"
#include "knn/kdtree.h"

namespace enld {

void TopofilterDetector::Setup(const Dataset& inventory) {
  // Topofilter has no pretraining stage: it trains per request. Setup only
  // retains the inventory to draw related samples from.
  inventory_ = inventory;
  request_counter_ = 0;
}

DetectionResult TopofilterDetector::Detect(const Dataset& incremental) {
  ENLD_CHECK(!inventory_.empty());  // Setup must run first.
  ++request_counter_;

  // Related inventory subset: samples whose observed label is in label(D).
  const std::vector<int> label_set = incremental.ObservedLabelSet();
  Dataset related = RelatedInventorySubset(inventory_, incremental);

  // Fresh training run on related ∪ D (this is the per-request cost).
  // Clean sets are collected at several evenly spaced checkpoints during
  // training — the later the checkpoint, the stronger the latent structure
  // but the more label memorization has blended mislabeled samples into
  // their observed class. A sample is clean when a majority of checkpoints
  // put it in a kept component.
  Dataset train_set = related;
  train_set.Append(incremental);
  Rng rng(config_.seed + request_counter_);
  auto model = MakeBackboneModel(config_.backbone, train_set.dim(),
                                 train_set.num_classes, rng);
  const size_t d_offset = related.size();
  const size_t checkpoints = std::max<size_t>(1, config_.checkpoints);

  // Pre-group per-class rows once; they do not change across checkpoints.
  std::vector<std::vector<size_t>> class_rows;
  class_rows.reserve(label_set.size());
  for (int y : label_set) {
    std::vector<size_t> rows;
    for (size_t i = 0; i < train_set.size(); ++i) {
      if (train_set.observed_labels[i] == y) rows.push_back(i);
    }
    class_rows.push_back(std::move(rows));
  }

  std::vector<uint32_t> clean_votes(incremental.size(), 0);
  size_t epochs_done = 0;
  for (size_t ckpt = 0; ckpt < checkpoints; ++ckpt) {
    const size_t target = config_.train.epochs * (ckpt + 1) / checkpoints;
    if (target > epochs_done) {
      TrainConfig segment = config_.train;
      segment.epochs = target - epochs_done;
      segment.seed = rng.NextUInt64();
      TrainModel(model.get(), train_set, /*validation=*/nullptr, segment);
      epochs_done = target;
    }
    const Matrix features = model->Features(train_set.features);
    for (const auto& rows : class_rows) {
      if (rows.empty()) continue;
      auto components = KnnGraphComponents(features, rows, config_.graph_k,
                                           config_.mutual_knn);
      size_t largest = 0;
      for (const auto& comp : components) {
        largest = std::max(largest, comp.size());
      }
      const double keep_threshold =
          config_.component_keep_ratio * static_cast<double>(largest);
      std::vector<bool> kept(rows.size(), false);
      for (const auto& comp : components) {
        if (static_cast<double>(comp.size()) < keep_threshold) continue;
        for (size_t pos : comp) kept[pos] = true;
      }

      // Reattachment pass: fringe points that failed the mutual-kNN
      // criterion but whose local neighbourhood lies in a kept component
      // are clean, not isolated. Genuinely isolated points (mislabeled
      // sub-clusters) have non-kept neighbourhoods and stay dropped.
      std::vector<std::pair<size_t, size_t>> sorted_rows(rows.size());
      for (size_t pos = 0; pos < rows.size(); ++pos) {
        sorted_rows[pos] = {rows[pos], pos};
      }
      std::sort(sorted_rows.begin(), sorted_rows.end());
      KdTree class_tree(features, rows);
      std::vector<bool> reattached(rows.size(), false);
      for (size_t pos = 0; pos < rows.size(); ++pos) {
        if (kept[pos] || rows[pos] < d_offset) continue;
        const auto near =
            class_tree.Nearest(features.Row(rows[pos]), config_.graph_k + 1);
        size_t kept_neighbors = 0;
        size_t counted = 0;
        for (const Neighbor& n : near) {
          auto it = std::lower_bound(
              sorted_rows.begin(), sorted_rows.end(),
              std::make_pair(n.index, size_t{0}),
              [](const auto& a, const auto& b) { return a.first < b.first; });
          const size_t other = it->second;
          if (other == pos) continue;
          ++counted;
          if (kept[other]) ++kept_neighbors;
        }
        if (counted > 0 && 2 * kept_neighbors > counted) {
          reattached[pos] = true;
        }
      }

      for (size_t pos = 0; pos < rows.size(); ++pos) {
        if (!kept[pos] && !reattached[pos]) continue;
        const size_t row = rows[pos];
        if (row >= d_offset) ++clean_votes[row - d_offset];
      }
    }
  }

  DetectionResult result;
  const uint32_t majority = static_cast<uint32_t>(checkpoints / 2 + 1);
  for (size_t i = 0; i < incremental.size(); ++i) {
    if (incremental.observed_labels[i] == kMissingLabel) continue;
    if (clean_votes[i] >= majority) {
      result.clean_indices.push_back(i);
    } else {
      result.noisy_indices.push_back(i);
    }
  }
  return result;
}

}  // namespace enld
