// Sharded-dataset contract: multi-shard save/load round trips, parallel
// load determinism across thread counts, and typed failures for every way
// a shard directory can rot (truncated/corrupted/missing shards, missing
// or tampered manifests).

#include "store/manifest.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "data/noise.h"
#include "data/synthetic.h"
#include "store/io.h"
#include "store/json.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("manifest_test_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    SetParallelThreads(0);
    fs::remove_all(dir_);
  }

  Dataset SampleData(int classes = 5, int per_class = 30) {
    SyntheticConfig config;
    config.num_classes = classes;
    config.samples_per_class = per_class;
    config.feature_dim = 6;
    config.seed = 17;
    Dataset d = GenerateSynthetic(config);
    Rng rng(18);
    ApplyLabelNoise(&d, TransitionMatrix::Symmetric(classes, 0.2), rng);
    MaskMissingLabels(&d, 0.1, rng);
    return d;
  }

  fs::path dir_;
};

void ExpectDatasetsBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.observed_labels, b.observed_labels);
  EXPECT_EQ(a.true_labels, b.true_labels);
  EXPECT_EQ(a.ids, b.ids);
  for (size_t i = 0; i < a.features.size(); ++i) {
    ASSERT_EQ(a.features.data()[i], b.features.data()[i]) << "feature " << i;
  }
}

TEST_F(ManifestTest, MultiShardRoundTrip) {
  const Dataset original = SampleData();  // 150 rows.
  ASSERT_TRUE(
      store::SaveDatasetSharded(original, dir_.string(), "inventory", 32)
          .ok());

  const auto manifest = store::ReadDatasetManifest(dir_.string());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->name, "inventory");
  EXPECT_EQ(manifest->num_rows, original.size());
  EXPECT_EQ(manifest->dim, original.dim());
  EXPECT_EQ(manifest->num_classes, original.num_classes);
  EXPECT_EQ(manifest->shards.size(), (original.size() + 31) / 32);

  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsBitIdentical(original, loaded.value());
}

TEST_F(ManifestTest, SingleAndEmptyShardRoundTrip) {
  const Dataset original = SampleData(3, 4);  // 12 rows, one shard.
  ASSERT_TRUE(
      store::SaveDatasetSharded(original, dir_.string(), "tiny").ok());
  auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsBitIdentical(original, loaded.value());

  Dataset empty;
  empty.num_classes = 2;
  fs::remove_all(dir_);
  ASSERT_TRUE(store::SaveDatasetSharded(empty, dir_.string(), "empty").ok());
  loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->num_classes, 2);
}

TEST_F(ManifestTest, ParallelLoadIsDeterministicAcrossThreadCounts) {
  const Dataset original = SampleData();
  ASSERT_TRUE(
      store::SaveDatasetSharded(original, dir_.string(), "inventory", 16)
          .ok());

  SetParallelThreads(1);
  const auto serial = store::LoadDatasetSharded(dir_.string());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (size_t threads : {2u, 4u}) {
    SetParallelThreads(threads);
    const auto parallel = store::LoadDatasetSharded(dir_.string());
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectDatasetsBitIdentical(serial.value(), parallel.value());
  }
}

TEST_F(ManifestTest, MissingDirectoryIsNotFound) {
  const auto loaded =
      store::LoadDatasetSharded((dir_ / "never_written").string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ManifestTest, DeletedShardIsNotFound) {
  ASSERT_TRUE(
      store::SaveDatasetSharded(SampleData(), dir_.string(), "d", 32).ok());
  fs::remove(dir_ / "shard-00001.bin");
  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ManifestTest, TruncatedShardIsInvalidArgument) {
  ASSERT_TRUE(
      store::SaveDatasetSharded(SampleData(), dir_.string(), "d", 32).ok());
  const fs::path shard = dir_ / "shard-00002.bin";
  fs::resize_file(shard, fs::file_size(shard) / 2);
  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestTest, CorruptedShardByteIsInvalidArgument) {
  ASSERT_TRUE(
      store::SaveDatasetSharded(SampleData(), dir_.string(), "d", 32).ok());
  const fs::path shard = dir_ / "shard-00000.bin";
  // Flip one byte in the middle of the shard; the manifest's whole-file
  // CRC must catch it before any parsing happens.
  std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(size / 2);
  byte = static_cast<char>(byte ^ 0x01);
  f.write(&byte, 1);
  f.close();

  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(ManifestTest, DeletedManifestIsNotFound) {
  ASSERT_TRUE(
      store::SaveDatasetSharded(SampleData(), dir_.string(), "d").ok());
  fs::remove(dir_ / "manifest.json");
  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ManifestTest, MalformedManifestIsInvalidArgument) {
  ASSERT_TRUE(
      store::SaveDatasetSharded(SampleData(), dir_.string(), "d").ok());
  std::ofstream(dir_ / "manifest.json") << "{ not json";
  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ManifestTest, TamperedRowCountIsInvalidArgument) {
  ASSERT_TRUE(
      store::SaveDatasetSharded(SampleData(), dir_.string(), "d", 32).ok());
  // Parse the real manifest, bump num_rows, write it back: the listed
  // shard row total no longer matches and the load must refuse.
  const auto bytes = store::ReadFile((dir_ / "manifest.json").string());
  ASSERT_TRUE(bytes.ok());
  auto doc = store::JsonValue::Parse(bytes.value());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const store::JsonValue* rows = doc->Find("num_rows");
  ASSERT_NE(rows, nullptr);
  doc->Set("num_rows", store::JsonValue::Number(rows->AsNumber() + 1));
  std::ofstream(dir_ / "manifest.json") << doc->ToString();

  const auto loaded = store::LoadDatasetSharded(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace enld
