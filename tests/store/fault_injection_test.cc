// Fault-injection coverage: every registered fault site is exercised, the
// io-layer retry policy absorbs transient faults, and a crash-point matrix
// over the snapshot publish protocol shows that a fault at ANY durable-write
// step leaves the store readable with the previous snapshot intact — never
// torn state.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/faults.h"
#include "common/retry.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "store/io.h"
#include "store/shard.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

Dataset TinyDataset() {
  Matrix features(4, 2);
  for (size_t r = 0; r < 4; ++r) {
    features.Row(r)[0] = static_cast<float>(r);
    features.Row(r)[1] = static_cast<float>(r) * 2.0f;
  }
  return MakeDataset(std::move(features), {0, 1, 0, 1}, {0, 1, 1, 0},
                     /*num_classes=*/2);
}

/// Clears the fault registry and pins a fast, sleep-free retry policy for
/// the duration of each test, restoring the process defaults afterward.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::Clear();
    saved_policy_ = store::DefaultIoRetryPolicy();
    store::DefaultIoRetryPolicy().initial_backoff_seconds = 0.0;
    store::DefaultIoRetryPolicy().max_backoff_seconds = 0.0;
    root_ = fs::path(::testing::TempDir()) /
            ("fault_test_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    faults::Clear();
    store::DefaultIoRetryPolicy() = saved_policy_;
    fs::remove_all(root_);
  }

  std::string Path(const std::string& name) const {
    return (root_ / name).string();
  }

  RetryPolicy saved_policy_;
  fs::path root_;
};

TEST_F(FaultInjectionTest, ReadFileFaultFailsWithoutRetries) {
  ASSERT_TRUE(store::WriteFileDurable(Path("a.txt"), "payload").ok());
  store::DefaultIoRetryPolicy().max_attempts = 1;
  faults::ArmSite("store/read_file", 1.0, /*max_fires=*/0,
                  /*burst_limit=*/0);
  const StatusOr<std::string> read = store::ReadFile(Path("a.txt"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, ReadFileTransientFaultAbsorbedByRetry) {
  ASSERT_TRUE(store::WriteFileDurable(Path("a.txt"), "payload").ok());
  faults::ArmSite("store/read_file", 1.0, /*max_fires=*/2,
                  /*burst_limit=*/0);
  const StatusOr<std::string> read = store::ReadFile(Path("a.txt"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), "payload");
  EXPECT_EQ(faults::TotalFires(), 2u);
}

TEST_F(FaultInjectionTest, EveryWriteStepFaultFailsCleanly) {
  int file_index = 0;
  for (const char* site : {"store/write_file", "store/fsync",
                           "store/rename"}) {
    faults::Clear();
    store::DefaultIoRetryPolicy().max_attempts = 1;
    faults::ArmSite(site, 1.0, /*max_fires=*/0, /*burst_limit=*/0);
    const std::string path =
        Path("out_" + std::to_string(file_index++) + ".txt");
    const Status status = store::WriteFileDurable(path, "data");
    ASSERT_FALSE(status.ok()) << site;
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << site;
    // A failed durable write never leaves a torn file under the final name.
    EXPECT_FALSE(fs::exists(path)) << site;
  }
}

TEST_F(FaultInjectionTest, WriteStepTransientFaultsAbsorbedByRetry) {
  for (const char* site : {"store/write_file", "store/fsync",
                           "store/rename"}) {
    faults::Clear();
    faults::ArmSite(site, 1.0, /*max_fires=*/2, /*burst_limit=*/0);
    const std::string path = Path("retry_out.txt");
    ASSERT_TRUE(store::WriteFileDurable(path, site).ok()) << site;
    const StatusOr<std::string> read = store::ReadFile(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), site);
    EXPECT_EQ(faults::TotalFires(), 2u) << site;
  }
}

TEST_F(FaultInjectionTest, ShardSaveAndLoadFaultSites) {
  const Dataset dataset = TinyDataset();
  const std::string path = Path("shard.bin");

  faults::ArmSite("store/save_shard", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  const Status save = store::SaveDatasetShard(dataset, path);
  ASSERT_FALSE(save.ok());
  EXPECT_EQ(save.code(), StatusCode::kUnavailable);

  faults::Clear();
  ASSERT_TRUE(store::SaveDatasetShard(dataset, path).ok());

  faults::ArmSite("store/load_shard", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  const StatusOr<Dataset> load = store::LoadDatasetShard(path);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kUnavailable);

  faults::Clear();
  const StatusOr<Dataset> reload = store::LoadDatasetShard(path);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload.value().size(), dataset.size());
}

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = testing_util::TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

/// Snapshot-level fault tests share one initialized platform: its state is
/// only read (Save is const; the armed Process call fails before touching
/// any state), so test order cannot leak between cases.
class FaultSnapshotTest : public FaultInjectionTest {
 protected:
  static void SetUpTestSuite() {
    workload_ =
        new Workload(BuildWorkload(testing_util::TinyWorkloadConfig(0.2)));
    platform_ = new DataPlatform(FastPlatformConfig());
    ASSERT_TRUE(platform_->Initialize(workload_->inventory).ok());
    ASSERT_TRUE(platform_->Process(workload_->incremental[0]).ok());
  }
  static void TearDownTestSuite() {
    delete platform_;
    delete workload_;
    platform_ = nullptr;
    workload_ = nullptr;
  }
  static Workload* workload_;
  static DataPlatform* platform_;
};

Workload* FaultSnapshotTest::workload_ = nullptr;
DataPlatform* FaultSnapshotTest::platform_ = nullptr;

TEST_F(FaultSnapshotTest, ProcessFaultSiteFailsRequest) {
  faults::ArmSite("platform/process", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  const StatusOr<DetectionResult> result =
      platform_->Process(workload_->incremental[1]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // The failed request never touched the platform's counters.
  EXPECT_EQ(platform_->stats().requests, 1u);
}

TEST_F(FaultSnapshotTest, PublishFaultAbsorbedByRetry) {
  faults::ArmSite("snapshot/publish", 1.0, /*max_fires=*/2,
                  /*burst_limit=*/0);
  ASSERT_TRUE(platform_->SaveSnapshot(root_.string()).ok());
  EXPECT_GE(faults::TotalFires(), 2u);
  faults::Clear();

  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(root_.string()).ok());
  EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
}

// The crash-point matrix: save one good snapshot, then re-run the save with
// an injected fault at the k-th check of each durable-write site, for every
// k. Each faulted save must fail, and a subsequent restore must load the
// previous good snapshot — the publish protocol has no step whose failure
// tears the store.
TEST_F(FaultSnapshotTest, CrashPointMatrixLeavesPreviousSnapshotIntact) {
  ASSERT_TRUE(platform_->SaveSnapshot(root_.string()).ok());

  // Count how many times a clean save checks each site, by arming them at
  // probability zero and watching the check counters.
  ASSERT_TRUE(faults::Configure("store/write_file:0,store/fsync:0,"
                                "store/rename:0,snapshot/publish:0")
                  .ok());
  ASSERT_TRUE(platform_->SaveSnapshot(root_.string()).ok());
  std::vector<std::pair<std::string, uint64_t>> sites;
  for (const faults::FaultSiteStats& s : faults::Stats()) {
    ASSERT_GT(s.checks, 0u) << s.site << " never checked during a save";
    sites.emplace_back(s.site, s.checks);
  }
  ASSERT_EQ(sites.size(), 4u);
  faults::Clear();

  const StatusOr<std::string> current = store::ReadFile(root_.string() +
                                                        "/CURRENT");
  ASSERT_TRUE(current.ok());
  const std::string current_before = current.value();
  const EnldFrameworkState want = platform_->framework().CaptureState();

  size_t crash_points = 0;
  for (const auto& [site, checks] : sites) {
    for (uint64_t skip = 0; skip < checks; ++skip) {
      // One shot, no retries: this models a hard crash at this exact step.
      store::DefaultIoRetryPolicy().max_attempts = 1;
      faults::ArmSite(site, 1.0, /*max_fires=*/1, /*burst_limit=*/0, skip);
      const Status failed = platform_->SaveSnapshot(root_.string());
      ASSERT_FALSE(failed.ok())
          << site << " skip=" << skip << " save unexpectedly succeeded";
      EXPECT_EQ(failed.code(), StatusCode::kUnavailable)
          << site << " skip=" << skip;
      faults::Clear();
      ++crash_points;

      // The store still reads back as the previous good snapshot.
      const StatusOr<std::string> pointer =
          store::ReadFile(root_.string() + "/CURRENT");
      ASSERT_TRUE(pointer.ok()) << site << " skip=" << skip;
      EXPECT_EQ(pointer.value(), current_before)
          << site << " skip=" << skip;
      DataPlatform restored(FastPlatformConfig());
      const Status recovered = restored.RestoreFromSnapshot(root_.string());
      ASSERT_TRUE(recovered.ok())
          << site << " skip=" << skip << ": " << recovered.ToString();
      EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
      const EnldFrameworkState got = restored.framework().CaptureState();
      EXPECT_EQ(got.model_weights, want.model_weights)
          << site << " skip=" << skip;
    }
  }
  EXPECT_GT(crash_points, 4u);

  // The store is not wedged by the failed attempts: a clean save works and
  // advances CURRENT past the matrix's leftovers.
  store::DefaultIoRetryPolicy().max_attempts = saved_policy_.max_attempts;
  ASSERT_TRUE(platform_->SaveSnapshot(root_.string()).ok());
  const StatusOr<std::string> advanced =
      store::ReadFile(root_.string() + "/CURRENT");
  ASSERT_TRUE(advanced.ok());
  EXPECT_NE(advanced.value(), current_before);
}

TEST_F(FaultSnapshotTest, SnapshotSurvivesLowProbabilityFaultStorm) {
  // End-to-end: every store site flaky at once, default retry policy on.
  // The save and the restore must both converge.
  ASSERT_TRUE(
      faults::Configure("store/read_file:0.2,store/write_file:0.2,"
                        "store/fsync:0.2,store/rename:0.2,"
                        "snapshot/publish:0.2",
                        /*seed=*/11)
          .ok());
  ASSERT_TRUE(platform_->SaveSnapshot(root_.string()).ok());
  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(root_.string()).ok());
  EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
  EXPECT_GT(faults::TotalFires(), 0u);
}

}  // namespace
}  // namespace enld
