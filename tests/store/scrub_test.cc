// Self-healing store coverage (docs/ROBUSTNESS.md §"Self-healing
// runbook"): the scrubber finds and types every planted defect, repair
// rebuilds damaged artifacts from surviving sections, sibling-snapshot
// donors or an operator --source directory, state.bin damage degrades to a
// typed failure (or an explicit rollback), and a crash-point matrix over
// repair's publish path shows that a fault at ANY durable-write step
// leaves CURRENT and the surviving snapshot byte-identical — then a re-run
// of the same repair heals the store.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/faults.h"
#include "common/retry.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "store/io.h"
#include "store/manifest.h"
#include "store/repair.h"
#include "store/scrub.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = testing_util::TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

/// Clears the fault registry, pins a sleep-free retry policy, and gives
/// each test a private store root, like the fault-injection fixture.
class ScrubRepairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::Clear();
    saved_policy_ = store::DefaultIoRetryPolicy();
    store::DefaultIoRetryPolicy().initial_backoff_seconds = 0.0;
    store::DefaultIoRetryPolicy().max_backoff_seconds = 0.0;
    root_ = fs::path(::testing::TempDir()) /
            ("scrub_test_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    faults::Clear();
    store::DefaultIoRetryPolicy() = saved_policy_;
    fs::remove_all(root_);
  }

  std::string Root() const { return root_.string(); }
  std::string Path(const std::string& name) const {
    return (root_ / name).string();
  }

  RetryPolicy saved_policy_;
  fs::path root_;
};

/// All scrub/repair tests share one initialized platform; every test saves
/// its snapshots into its own root, so only the (const) in-memory state is
/// shared.
class ScrubRepairStoreTest : public ScrubRepairTest {
 protected:
  static void SetUpTestSuite() {
    workload_ =
        new Workload(BuildWorkload(testing_util::TinyWorkloadConfig(0.2)));
    platform_ = new DataPlatform(FastPlatformConfig());
    ASSERT_TRUE(platform_->Initialize(workload_->inventory).ok());
    ASSERT_TRUE(platform_->Process(workload_->incremental[0]).ok());
  }
  static void TearDownTestSuite() {
    delete platform_;
    delete workload_;
    platform_ = nullptr;
    workload_ = nullptr;
  }

  /// Saves `count` snapshots of the shared platform state into root_.
  /// Consecutive saves of an unchanged platform produce byte-identical
  /// shards and model files (deterministic encoding), which is exactly
  /// what the donor_file repair path needs.
  void SaveSnapshots(int count) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(platform_->SaveSnapshot(Root()).ok());
    }
  }

  /// Flips one byte at `offset` within the file (read-modify-write, size
  /// preserved) — a bit-rot model, not truncation.
  static void FlipByte(const std::string& path, size_t offset) {
    StatusOr<std::string> data = store::ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    ASSERT_LT(offset, data.value().size()) << path;
    std::string bytes = std::move(data).value();
    bytes[offset] ^= 0x5A;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
  }

  /// Byte offset of the last section's payload inside a shard file — the
  /// missing-label bitmap, the one section repair can regenerate from the
  /// others. Derived from the envelope layout (40-byte header, then
  /// id u32 + len u64 + crc u32 + payload per section).
  static size_t BitmapPayloadOffset(const std::string& shard_path) {
    StatusOr<std::string> data = store::ReadFile(shard_path);
    EXPECT_TRUE(data.ok());
    const std::string& bytes = data.value();
    size_t offset = 40;
    for (int section = 0; section < 4; ++section) {
      uint64_t length = 0;
      std::memcpy(&length, bytes.data() + offset + 4, sizeof(length));
      offset += 16 + length;
    }
    return offset + 16;  // skip the bitmap's own envelope header
  }

  std::string ShardPath(uint64_t seq, const std::string& dataset) const {
    return Path(store::SnapshotStore::DirName(seq) + "/" + dataset +
                "/shard-00000.bin");
  }

  static Workload* workload_;
  static DataPlatform* platform_;
};

Workload* ScrubRepairStoreTest::workload_ = nullptr;
DataPlatform* ScrubRepairStoreTest::platform_ = nullptr;

TEST_F(ScrubRepairStoreTest, CleanStoreScrubsClean) {
  SaveSnapshots(1);
  const StatusOr<store::ScrubReport> report = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(report.value().current_seq, 1u);
  EXPECT_EQ(report.value().scrubbed, std::vector<uint64_t>{1});
  EXPECT_GT(report.value().files_checked, 0u);
  EXPECT_GT(report.value().sections_checked, 0u);
  EXPECT_GT(report.value().bytes_scrubbed, 0u);
  EXPECT_EQ(report.value().intact_seqs(), std::vector<uint64_t>{1});
}

TEST_F(ScrubRepairStoreTest, ScrubTypesPlantedCorruption) {
  SaveSnapshots(2);
  FlipByte(ShardPath(2, store::kSnapshotTrainDir), 48);  // features payload

  const StatusOr<store::ScrubReport> report = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report.value().clean());
  EXPECT_TRUE(report.value().snapshot_clean(1));
  EXPECT_FALSE(report.value().snapshot_clean(2));
  EXPECT_EQ(report.value().intact_seqs(), std::vector<uint64_t>{1});
  bool found_crc = false;
  for (const store::ScrubFinding& finding : report.value().findings) {
    EXPECT_EQ(finding.seq, 2u) << finding.file << ": " << finding.detail;
    if (finding.reason == "crc_mismatch") found_crc = true;
  }
  EXPECT_TRUE(found_crc);
}

TEST_F(ScrubRepairStoreTest, ScrubFlagsMalformedCurrentPointer) {
  SaveSnapshots(1);
  ASSERT_TRUE(store::WriteFileDurable(Path("CURRENT"), "snap-garbage\n").ok());
  const StatusOr<store::ScrubReport> report = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().current_seq, 0u);
  ASSERT_FALSE(report.value().findings.empty());
  EXPECT_EQ(report.value().findings[0].section, "pointer");
  // The snapshot itself is still intact — only the pointer is damaged.
  EXPECT_EQ(report.value().intact_seqs(), std::vector<uint64_t>{1});
}

TEST_F(ScrubRepairStoreTest, RepairRebuildsShardFromSurvivingSections) {
  SaveSnapshots(1);
  const std::string shard = ShardPath(1, store::kSnapshotTrainDir);
  FlipByte(shard, BitmapPayloadOffset(shard));

  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().clean);
  EXPECT_TRUE(report.value().repaired);
  EXPECT_TRUE(report.value().failure.empty()) << report.value().failure;
  EXPECT_EQ(report.value().target_seq, 1u);
  EXPECT_EQ(report.value().published_seq, 2u);
  ASSERT_FALSE(report.value().actions.empty());
  EXPECT_EQ(report.value().actions[0].method, "section_rebuild");

  // The healed store scrubs clean and restores.
  const StatusOr<store::ScrubReport> rescrub = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(rescrub.ok());
  EXPECT_TRUE(rescrub.value().clean()) << rescrub.value().findings.size();
  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(Root()).ok());
  EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
  const EnldFrameworkState want = platform_->framework().CaptureState();
  EXPECT_EQ(restored.framework().CaptureState().model_weights,
            want.model_weights);
}

TEST_F(ScrubRepairStoreTest, RepairCopiesShardFromSiblingDonor) {
  SaveSnapshots(2);
  // Destroy the shard header too, so section_rebuild cannot run and the
  // repairer must fall back to the byte-identical donor in snap-000001.
  const std::string shard = ShardPath(2, store::kSnapshotTrainDir);
  FlipByte(shard, 0);
  FlipByte(shard, 48);

  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().repaired) << report.value().failure;
  EXPECT_EQ(report.value().target_seq, 2u);
  EXPECT_EQ(report.value().published_seq, 3u);
  ASSERT_FALSE(report.value().actions.empty());
  EXPECT_EQ(report.value().actions[0].method, "donor_file");

  const StatusOr<store::ScrubReport> rescrub = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(rescrub.ok());
  EXPECT_TRUE(rescrub.value().clean());
  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(Root()).ok());
  EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
}

TEST_F(ScrubRepairStoreTest, RepairRebuildsRowsFromSourceDirectory) {
  SaveSnapshots(1);
  // With a single snapshot there is no sibling donor; the operator supplies
  // the corrected dataset via --source instead.
  const EnldFrameworkState state = platform_->framework().CaptureState();
  const std::string source_dir = Path("source-train");
  ASSERT_TRUE(
      store::SaveDatasetSharded(state.train_set, source_dir, "train").ok());
  const std::string shard = ShardPath(1, store::kSnapshotTrainDir);
  FlipByte(shard, 0);
  FlipByte(shard, 48);

  store::RepairOptions options;
  options.source_dir = source_dir;
  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().repaired) << report.value().failure;
  ASSERT_FALSE(report.value().actions.empty());
  EXPECT_EQ(report.value().actions[0].method, "donor_rows");
  EXPECT_EQ(report.value().actions[0].source, source_dir);

  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(Root()).ok());
  EXPECT_EQ(restored.framework().CaptureState().train_set.size(),
            state.train_set.size());
}

TEST_F(ScrubRepairStoreTest, DryRunPlansWithoutMutatingStore) {
  SaveSnapshots(1);
  const std::string shard = ShardPath(1, store::kSnapshotTrainDir);
  FlipByte(shard, BitmapPayloadOffset(shard));
  const StatusOr<std::string> current_before =
      store::ReadFile(Path("CURRENT"));
  ASSERT_TRUE(current_before.ok());

  store::RepairOptions options;
  options.dry_run = true;
  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().dry_run);
  EXPECT_FALSE(report.value().repaired);
  EXPECT_EQ(report.value().published_seq, 0u);
  ASSERT_FALSE(report.value().actions.empty());
  EXPECT_EQ(report.value().actions[0].method, "section_rebuild");

  // Nothing changed on disk: same pointer, same damaged shard, no new dirs.
  EXPECT_EQ(store::ReadFile(Path("CURRENT")).value(), current_before.value());
  EXPECT_EQ(store::SnapshotStore(Root()).ListSeqs(),
            std::vector<uint64_t>{1});

  // The real run then heals what the plan described.
  const StatusOr<store::RepairReport> heal = store::RepairSnapshotStore(Root());
  ASSERT_TRUE(heal.ok());
  EXPECT_TRUE(heal.value().repaired);
}

TEST_F(ScrubRepairStoreTest, RepairRebuildsDamagedCurrentPointer) {
  SaveSnapshots(2);
  ASSERT_TRUE(store::WriteFileDurable(Path("CURRENT"), "snap-garbage\n").ok());

  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report.value().repaired) << report.value().failure;
  EXPECT_EQ(report.value().target_seq, 2u);
  EXPECT_EQ(report.value().published_seq, 2u);
  ASSERT_FALSE(report.value().actions.empty());
  EXPECT_EQ(report.value().actions[0].method, "current_rebuild");
  EXPECT_EQ(store::ReadFile(Path("CURRENT")).value(), "snap-000002\n");
  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(Root()).ok());
}

TEST_F(ScrubRepairStoreTest, DamagedStateBinFailsWithTypedFailure) {
  SaveSnapshots(2);
  // state.bin is unique per snapshot: no donor can rebuild it.
  FlipByte(Path(store::SnapshotStore::DirName(2) + "/" +
                store::kSnapshotStateFile),
           48);

  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().repaired);
  ASSERT_FALSE(report.value().failure.empty());
  // The failure names the newest intact snapshot the operator can roll
  // back to.
  EXPECT_NE(report.value().failure.find("snap-000001"), std::string::npos)
      << report.value().failure;
  // Without --allow_rollback nothing moved.
  EXPECT_EQ(store::ReadFile(Path("CURRENT")).value(), "snap-000002\n");

  store::RepairOptions options;
  options.allow_rollback = true;
  const StatusOr<store::RepairReport> rollback =
      store::RepairSnapshotStore(Root(), options);
  ASSERT_TRUE(rollback.ok()) << rollback.status().ToString();
  EXPECT_TRUE(rollback.value().repaired);
  EXPECT_EQ(rollback.value().published_seq, 1u);
  ASSERT_FALSE(rollback.value().actions.empty());
  EXPECT_EQ(rollback.value().actions.front().method, "rollback");
  // The abandoned damaged snapshot is garbage-collected, so the healed
  // lineage scrubs clean.
  EXPECT_EQ(rollback.value().actions.back().method, "gc");
  EXPECT_FALSE(fs::exists(root_ / store::SnapshotStore::DirName(2)));
  EXPECT_EQ(store::ReadFile(Path("CURRENT")).value(), "snap-000001\n");
  DataPlatform restored(FastPlatformConfig());
  ASSERT_TRUE(restored.RestoreFromSnapshot(Root()).ok());
  EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
}

TEST_F(ScrubRepairStoreTest, ScrubReadFaultDegradesToFindingsNeverMutates) {
  SaveSnapshots(1);
  const std::string current_before = store::ReadFile(Path("CURRENT")).value();

  // A persistently unreadable store is reported, not propagated: every
  // file degrades to a typed "unreadable" finding, and the scrub — which
  // never writes — leaves the store untouched.
  store::DefaultIoRetryPolicy().max_attempts = 1;
  faults::ArmSite("store/scrub_read", 1.0, /*max_fires=*/0,
                  /*burst_limit=*/0);
  const StatusOr<store::ScrubReport> stormy = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(stormy.ok()) << stormy.status().ToString();
  ASSERT_FALSE(stormy.value().clean());
  for (const store::ScrubFinding& finding : stormy.value().findings) {
    EXPECT_EQ(finding.reason, "unreadable") << finding.detail;
  }
  faults::Clear();
  EXPECT_EQ(store::ReadFile(Path("CURRENT")).value(), current_before);
  store::DefaultIoRetryPolicy().max_attempts = saved_policy_.max_attempts;
  const StatusOr<store::ScrubReport> calm = store::ScrubSnapshotStore(Root());
  ASSERT_TRUE(calm.ok());
  EXPECT_TRUE(calm.value().clean());

  // Transient scrub-read faults during a real repair are absorbed by the
  // store retry policy.
  const std::string shard = ShardPath(1, store::kSnapshotTrainDir);
  FlipByte(shard, BitmapPayloadOffset(shard));
  faults::ArmSite("store/scrub_read", 1.0, /*max_fires=*/2,
                  /*burst_limit=*/0);
  const StatusOr<store::RepairReport> retried =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(retried.value().repaired);
  EXPECT_GE(faults::TotalFires(), 2u);
}

// The repair crash-point matrix (the "kill-resume drill" of the runbook):
// damage a store, then re-run the repair with an injected crash at the
// k-th check of every durable-write site repair goes through, for every k.
// Each faulted repair must fail without moving CURRENT or perturbing a
// single byte of the surviving snapshot — and a re-run of the same repair
// on the crashed store must heal it.
TEST_F(ScrubRepairStoreTest, CrashPointMatrixPreservesPreRepairSnapshot) {
  SaveSnapshots(2);
  const std::string shard = ShardPath(2, store::kSnapshotTrainDir);
  FlipByte(shard, BitmapPayloadOffset(shard));
  const fs::path work = fs::path(Root() + "-work");
  fs::remove_all(work);
  fs::copy(root_, work, fs::copy_options::recursive);

  const std::string state_rel =
      store::SnapshotStore::DirName(1) + "/" + store::kSnapshotStateFile;
  const std::string current_before =
      store::ReadFile((work / "CURRENT").string()).value();
  const std::string survivor_before =
      store::ReadFile((work / state_rel).string()).value();

  // Count how many times a clean repair checks each site.
  ASSERT_TRUE(faults::Configure("store/write_file:0,store/fsync:0,"
                                "store/rename:0,snapshot/publish:0,"
                                "store/repair_publish:0")
                  .ok());
  {
    const StatusOr<store::RepairReport> clean_run =
        store::RepairSnapshotStore(work.string());
    ASSERT_TRUE(clean_run.ok()) << clean_run.status().ToString();
    ASSERT_TRUE(clean_run.value().repaired);
  }
  std::vector<std::pair<std::string, uint64_t>> sites;
  for (const faults::FaultSiteStats& s : faults::Stats()) {
    ASSERT_GT(s.checks, 0u) << s.site << " never checked during a repair";
    sites.emplace_back(s.site, s.checks);
  }
  ASSERT_EQ(sites.size(), 5u);
  faults::Clear();

  size_t crash_points = 0;
  for (const auto& [site, checks] : sites) {
    for (uint64_t skip = 0; skip < checks; ++skip) {
      fs::remove_all(work);
      fs::copy(root_, work, fs::copy_options::recursive);

      // One shot, no retries: a hard crash at this exact step.
      store::DefaultIoRetryPolicy().max_attempts = 1;
      faults::ArmSite(site, 1.0, /*max_fires=*/1, /*burst_limit=*/0, skip);
      const StatusOr<store::RepairReport> crashed =
          store::RepairSnapshotStore(work.string());
      ASSERT_FALSE(crashed.ok())
          << site << " skip=" << skip << " repair unexpectedly succeeded";
      EXPECT_EQ(crashed.status().code(), StatusCode::kUnavailable)
          << site << " skip=" << skip;
      faults::Clear();
      ++crash_points;

      // CURRENT never moved and the surviving snapshot is byte-identical.
      EXPECT_EQ(store::ReadFile((work / "CURRENT").string()).value(),
                current_before)
          << site << " skip=" << skip;
      EXPECT_EQ(store::ReadFile((work / state_rel).string()).value(),
                survivor_before)
          << site << " skip=" << skip;
      const StatusOr<store::SnapshotContents> survivor =
          store::SnapshotStore(work.string()).Load(1);
      ASSERT_TRUE(survivor.ok())
          << site << " skip=" << skip << ": " << survivor.status().ToString();

      // Resume: the same repair, re-run on the crashed store, heals it.
      store::DefaultIoRetryPolicy().max_attempts = saved_policy_.max_attempts;
      const StatusOr<store::RepairReport> resumed =
          store::RepairSnapshotStore(work.string());
      ASSERT_TRUE(resumed.ok())
          << site << " skip=" << skip << ": " << resumed.status().ToString();
      ASSERT_TRUE(resumed.value().repaired)
          << site << " skip=" << skip << ": " << resumed.value().failure;
      const StatusOr<store::ScrubReport> healed =
          store::ScrubSnapshotStore(work.string());
      ASSERT_TRUE(healed.ok());
      EXPECT_TRUE(healed.value().clean()) << site << " skip=" << skip;
      DataPlatform restored(FastPlatformConfig());
      ASSERT_TRUE(restored.RestoreFromSnapshot(work.string()).ok())
          << site << " skip=" << skip;
      EXPECT_EQ(restored.stats().requests, platform_->stats().requests);
    }
  }
  EXPECT_GT(crash_points, 5u);
  fs::remove_all(work);
}

TEST_F(ScrubRepairStoreTest, RepairReportJsonRoundTripsSchema) {
  SaveSnapshots(1);
  const std::string shard = ShardPath(1, store::kSnapshotTrainDir);
  FlipByte(shard, BitmapPayloadOffset(shard));
  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(report.ok());

  const std::string scrub_path = Path("scrub.json");
  const std::string repair_path = Path("repair.json");
  ASSERT_TRUE(
      store::WriteScrubReportJson(report.value().scrub, scrub_path).ok());
  ASSERT_TRUE(store::WriteRepairReportJson(report.value(), repair_path).ok());
  const std::string scrub_json = store::ReadFile(scrub_path).value();
  const std::string repair_json = store::ReadFile(repair_path).value();
  EXPECT_NE(scrub_json.find("\"enld-scrub-v1\""), std::string::npos);
  EXPECT_NE(scrub_json.find("crc_mismatch"), std::string::npos);
  EXPECT_NE(repair_json.find("\"enld-repair-v1\""), std::string::npos);
  EXPECT_NE(repair_json.find("section_rebuild"), std::string::npos);
}

TEST_F(ScrubRepairTest, EmptyRootIsUnrepairable) {
  const StatusOr<store::RepairReport> report =
      store::RepairSnapshotStore(Root());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().repaired);
  EXPECT_FALSE(report.value().failure.empty());

  const StatusOr<store::ScrubReport> missing =
      store::ScrubSnapshotStore(Path("does-not-exist"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace enld
