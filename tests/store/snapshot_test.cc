// Snapshot contract: a restored DataPlatform is the platform that wrote
// the snapshot — same model weights, P̃, S_c, RNG position, stats — and
// every corruption of the on-disk state is rejected with a typed error
// that leaves the restore target untouched.

#include "store/snapshot.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "data/workload.h"
#include "store/io.h"
#include "store/json.h"
#include "test_util.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = testing_util::TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  config.min_update_samples = 1;
  return config;
}

void FlipByte(const fs::path& path, size_t offset_from_middle = 0) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const std::streamoff pos =
      f.tellg() / 2 + static_cast<std::streamoff>(offset_from_middle);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(pos);
  byte = static_cast<char>(byte ^ 0x10);
  f.write(&byte, 1);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("snapshot_test_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(root_);
  }
  void TearDown() override {
    SetParallelThreads(0);
    fs::remove_all(root_);
  }

  fs::path root_;
};

TEST_F(SnapshotTest, FingerprintIsStableAndSensitive) {
  const DataPlatformConfig config = FastPlatformConfig();
  const uint64_t fp = store::FingerprintConfig(config);
  EXPECT_EQ(fp, store::FingerprintConfig(config));  // Deterministic.

  DataPlatformConfig changed = config;
  changed.enld.iterations += 1;
  EXPECT_NE(store::FingerprintConfig(changed), fp);
  changed = config;
  changed.update_every = 7;
  EXPECT_NE(store::FingerprintConfig(changed), fp);
  changed = config;
  changed.enld.general.train.epochs += 1;
  EXPECT_NE(store::FingerprintConfig(changed), fp);
}

TEST_F(SnapshotTest, SaveRestoreRoundTripsEveryStateComponent) {
  const Workload workload = BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatform source(FastPlatformConfig());
  ASSERT_TRUE(source.Initialize(workload.inventory).ok());
  ASSERT_TRUE(source.Process(workload.incremental[0]).ok());
  ASSERT_TRUE(source.SaveSnapshot(root_.string()).ok());

  DataPlatform restored(FastPlatformConfig());
  const Status status = restored.RestoreFromSnapshot(root_.string());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(restored.initialized());

  // Service counters carried over exactly.
  EXPECT_EQ(restored.stats().requests, source.stats().requests);
  EXPECT_EQ(restored.stats().samples_processed,
            source.stats().samples_processed);
  EXPECT_EQ(restored.stats().samples_flagged_noisy,
            source.stats().samples_flagged_noisy);
  EXPECT_EQ(restored.stats().model_updates, source.stats().model_updates);

  // The full framework state — θ, I_t, I_c, P̃, S_c, RNG — byte for byte.
  const EnldFrameworkState a = source.framework().CaptureState();
  const EnldFrameworkState b = restored.framework().CaptureState();
  EXPECT_EQ(a.model_dims, b.model_dims);
  EXPECT_EQ(a.model_weights, b.model_weights);
  EXPECT_EQ(a.conditional, b.conditional);
  EXPECT_EQ(a.selected_clean, b.selected_clean);
  EXPECT_EQ(a.train_set.ids, b.train_set.ids);
  EXPECT_EQ(a.train_set.observed_labels, b.train_set.observed_labels);
  EXPECT_EQ(a.candidate_set.ids, b.candidate_set.ids);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.rng.state[i], b.rng.state[i]);
  }
  EXPECT_EQ(a.rng.has_cached_gaussian, b.rng.has_cached_gaussian);
  EXPECT_EQ(a.rng.cached_gaussian, b.rng.cached_gaussian);
}

TEST_F(SnapshotTest, SequenceNumbersAdvanceAndListCompletely) {
  const Workload workload = BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload.inventory).ok());

  store::SnapshotStore snapshots(root_.string());
  EXPECT_EQ(snapshots.LatestSeq().status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(snapshots.ListSeqs().empty());

  ASSERT_TRUE(platform.SaveSnapshot(root_.string()).ok());
  ASSERT_TRUE(platform.Process(workload.incremental[0]).ok());
  ASSERT_TRUE(platform.SaveSnapshot(root_.string()).ok());

  const auto latest = snapshots.LatestSeq();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value(), 2u);
  EXPECT_EQ(snapshots.ListSeqs(), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(store::SnapshotStore::DirName(2), "snap-000002");

  // Both snapshots load standalone, and LoadLatest follows CURRENT.
  ASSERT_TRUE(snapshots.Load(1).ok());
  const auto current = snapshots.LoadLatest();
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  EXPECT_EQ(current->seq, 2u);
  EXPECT_EQ(current->stats.requests, 1u);
}

TEST_F(SnapshotTest, KeepLastRetentionPrunesAllButNewest) {
  const Workload workload = BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatformConfig config = FastPlatformConfig();
  config.snapshot_keep_last = 2;
  // The retention knob is an ops setting, never part of the fingerprint.
  EXPECT_EQ(store::FingerprintConfig(config),
            store::FingerprintConfig(FastPlatformConfig()));

  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload.inventory).ok());
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        platform.Process(workload.incremental[i % workload.incremental.size()])
            .ok());
    ASSERT_TRUE(platform.SaveSnapshot(root_.string()).ok());
  }

  // Only the newest two survive; both still load and CURRENT is intact.
  store::SnapshotStore snapshots(root_.string());
  EXPECT_EQ(snapshots.ListSeqs(), (std::vector<uint64_t>{4, 5}));
  ASSERT_TRUE(snapshots.Load(4).ok());
  const auto latest = snapshots.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->seq, 5u);
  EXPECT_EQ(latest->stats.requests, 5u);

  // A platform restored from the pruned store resumes normally.
  DataPlatform resumed(config);
  ASSERT_TRUE(resumed.RestoreFromSnapshot(root_.string()).ok());
  EXPECT_EQ(resumed.stats().requests, 5u);
}

TEST_F(SnapshotTest, GarbageCollectSparesCurrentTargetAfterMidPublishCrash) {
  const Workload workload = BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload.inventory).ok());
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        platform.Process(workload.incremental[i % workload.incremental.size()])
            .ok());
    ASSERT_TRUE(platform.SaveSnapshot(root_.string()).ok());
  }

  // Simulate crashes between the snapshot-directory publish and the
  // CURRENT update: newer directories exist on disk, but CURRENT still
  // points at snapshot 3.
  fs::create_directories(root_ / store::SnapshotStore::DirName(4));
  fs::create_directories(root_ / store::SnapshotStore::DirName(5));
  store::SnapshotStore snapshots(root_.string(), /*keep_last=*/1);
  ASSERT_EQ(snapshots.LatestSeq().value(), 3u);

  // keep_last=1 would retain only the newest directory (the unpublished
  // crash leftover) — CURRENT's target must survive anyway, or a reader
  // following CURRENT would find nothing.
  EXPECT_EQ(snapshots.GarbageCollect(), 3u);  // removed 1, 2 and 4
  EXPECT_EQ(snapshots.ListSeqs(), (std::vector<uint64_t>{3, 5}));
  const auto current = snapshots.LoadLatest();
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  EXPECT_EQ(current->seq, 3u);

  // A keep_last of zero is "retain everything": nothing else is removed.
  EXPECT_EQ(store::SnapshotStore(root_.string()).GarbageCollect(), 0u);
  EXPECT_EQ(snapshots.ListSeqs(), (std::vector<uint64_t>{3, 5}));
}

TEST_F(SnapshotTest, SaveRequiresInitializedPlatform) {
  DataPlatform platform(FastPlatformConfig());
  const Status status = platform.SaveSnapshot(root_.string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotTest, ConfigMismatchIsFailedPreconditionAndLeavesTargetUsable) {
  const Workload workload = BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatform source(FastPlatformConfig());
  ASSERT_TRUE(source.Initialize(workload.inventory).ok());
  ASSERT_TRUE(source.SaveSnapshot(root_.string()).ok());

  // A platform running a different detection schedule must refuse the
  // snapshot — and keep serving from its own state afterwards.
  DataPlatformConfig other_config = FastPlatformConfig();
  other_config.enld.iterations += 1;
  DataPlatform other(other_config);
  ASSERT_TRUE(other.Initialize(workload.inventory).ok());
  const uint64_t requests_before = other.stats().requests;

  const Status status = other.RestoreFromSnapshot(root_.string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(other.initialized());
  EXPECT_EQ(other.stats().requests, requests_before);
  EXPECT_TRUE(other.Process(workload.incremental[0]).ok());
}

TEST_F(SnapshotTest, MissingStoreIsNotFound) {
  DataPlatform platform(FastPlatformConfig());
  const Status status =
      platform.RestoreFromSnapshot((root_ / "never_written").string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(platform.initialized());
}

TEST_F(SnapshotTest, EveryCorruptionClassIsTypedAndNonDestructive) {
  const Workload workload = BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatform source(FastPlatformConfig());
  ASSERT_TRUE(source.Initialize(workload.inventory).ok());
  ASSERT_TRUE(source.Process(workload.incremental[0]).ok());
  const fs::path pristine = root_ / "pristine";
  ASSERT_TRUE(source.SaveSnapshot(pristine.string()).ok());
  const std::string snap = store::SnapshotStore::DirName(1);

  struct Case {
    const char* name;
    StatusCode expected;
    std::function<void(const fs::path&)> corrupt;
  };
  const std::vector<Case> cases = {
      {"delete CURRENT", StatusCode::kNotFound,
       [](const fs::path& d) { fs::remove(d / "CURRENT"); }},
      {"delete MANIFEST.json", StatusCode::kNotFound,
       [&](const fs::path& d) { fs::remove(d / snap / "MANIFEST.json"); }},
      {"delete model.bin", StatusCode::kNotFound,
       [&](const fs::path& d) { fs::remove(d / snap / "model.bin"); }},
      {"delete a train shard", StatusCode::kNotFound,
       [&](const fs::path& d) {
         fs::remove(d / snap / "train" / "shard-00000.bin");
       }},
      {"truncate state.bin", StatusCode::kInvalidArgument,
       [&](const fs::path& d) {
         const fs::path f = d / snap / "state.bin";
         fs::resize_file(f, fs::file_size(f) / 2);
       }},
      {"flip byte in state.bin", StatusCode::kInvalidArgument,
       [&](const fs::path& d) { FlipByte(d / snap / "state.bin"); }},
      {"flip byte in model.bin", StatusCode::kInvalidArgument,
       [&](const fs::path& d) { FlipByte(d / snap / "model.bin"); }},
      {"flip byte in candidate shard", StatusCode::kInvalidArgument,
       [&](const fs::path& d) {
         FlipByte(d / snap / "candidate" / "shard-00000.bin");
       }},
      {"drop a manifest file entry", StatusCode::kInvalidArgument,
       [&](const fs::path& d) {
         const fs::path m = d / snap / "MANIFEST.json";
         const auto bytes = store::ReadFile(m.string());
         ASSERT_TRUE(bytes.ok());
         auto doc = store::JsonValue::Parse(bytes.value());
         ASSERT_TRUE(doc.ok());
         const store::JsonValue* listed = doc->Find("files");
         ASSERT_NE(listed, nullptr);
         store::JsonValue pruned = *listed;
         ASSERT_FALSE(pruned.items().empty());
         pruned.items().pop_back();
         doc->Set("files", pruned);
         std::ofstream(m) << doc->ToString();
       }},
      {"garbage CURRENT", StatusCode::kInvalidArgument,
       [](const fs::path& d) {
         std::ofstream(d / "CURRENT") << "snap-xyzzzz\n";
       }},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const fs::path dir = root_ / "case";
    fs::remove_all(dir);
    fs::copy(pristine, dir, fs::copy_options::recursive);
    c.corrupt(dir);

    DataPlatform target(FastPlatformConfig());
    const Status status = target.RestoreFromSnapshot(dir.string());
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), c.expected) << status.ToString();
    // No partial mutation: the target never became initialized, so it can
    // still be stood up normally.
    EXPECT_FALSE(target.initialized());
  }

  // And against a live platform: a failed restore must leave it serving
  // from its previous state.
  const fs::path dir = root_ / "case";
  fs::remove_all(dir);
  fs::copy(pristine, dir, fs::copy_options::recursive);
  FlipByte(dir / snap / "state.bin");
  DataPlatform live(FastPlatformConfig());
  ASSERT_TRUE(live.Initialize(workload.inventory).ok());
  const Status status = live.RestoreFromSnapshot(dir.string());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(live.initialized());
  EXPECT_EQ(live.stats().requests, 0u);
  EXPECT_TRUE(live.Process(workload.incremental[0]).ok());
}

}  // namespace
}  // namespace enld
