// Quarantine replay coverage (docs/ROBUSTNESS.md §"Self-healing
// runbook"): the quarantine JSON round-trips its truncation marker,
// replay re-screens every quarantined sample afresh against corrected
// source data (readmitted / still_rejected / missing verdicts, id-level
// dedup), and readmitted rows flow back into the platform through the
// normal Process path with the operator's request id on the audit trail.

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/workload.h"
#include "enld/admission.h"
#include "enld/platform.h"
#include "store/io.h"
#include "store/quarantine.h"
#include "store/replay.h"
#include "test_util.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

QuarantineRecord Record(uint64_t sample_id, RejectionReason reason) {
  QuarantineRecord record;
  record.request = 1;
  record.request_id = 42;
  record.sample_id = sample_id;
  record.row = sample_id;
  record.reason = reason;
  record.detail = "test record";
  return record;
}

TEST(QuarantineFileTest, TruncatedMarkerRoundTrips) {
  QuarantineLog log(/*capacity=*/2);
  log.Add(Record(10, RejectionReason::kNonFiniteFeature));
  log.Add(Record(11, RejectionReason::kObservedLabelOutOfRange));
  log.Add(Record(12, RejectionReason::kTrueLabelOutOfRange));
  ASSERT_TRUE(log.truncated());

  const std::string path = TempPath("quarantine_truncated.json");
  ASSERT_TRUE(store::WriteQuarantineJson(log, path).ok());
  const StatusOr<std::string> raw = store::ReadFile(path);
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw.value().find("\"truncated\": true"), std::string::npos);

  const StatusOr<store::QuarantineFile> parsed =
      store::ReadQuarantineJson(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().truncated);
  EXPECT_EQ(parsed.value().total, 3u);
  EXPECT_EQ(parsed.value().capacity, 2u);
  ASSERT_EQ(parsed.value().records.size(), 2u);
  EXPECT_EQ(parsed.value().records[0].sample_id, 10u);
  EXPECT_EQ(parsed.value().records[0].reason, "non_finite_feature");
  EXPECT_EQ(parsed.value().records[0].request_id, 42u);
  fs::remove(path);
}

TEST(QuarantineFileTest, UntruncatedLogWritesFalseMarker) {
  QuarantineLog log(/*capacity=*/8);
  log.Add(Record(5, RejectionReason::kNonFiniteFeature));
  const std::string path = TempPath("quarantine_full.json");
  ASSERT_TRUE(store::WriteQuarantineJson(log, path).ok());
  const StatusOr<store::QuarantineFile> parsed =
      store::ReadQuarantineJson(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().truncated);
  EXPECT_EQ(parsed.value().total, 1u);
  fs::remove(path);
}

TEST(QuarantineFileTest, LegacyFileWithoutMarkerDerivesTruncation) {
  // Files from builds predating the marker carry no "truncated" key; the
  // reader falls back to total > recorded.
  const std::string path = TempPath("quarantine_legacy.json");
  ASSERT_TRUE(store::WriteFileDurable(
                  path,
                  "{\"schema\": \"enld-quarantine-v1\", \"total\": 4, "
                  "\"recorded\": 1, \"capacity\": 1, \"records\": "
                  "[{\"request\": 1, \"row\": 0, \"sample_id\": 7, "
                  "\"reason\": \"non_finite_feature\"}]}")
                  .ok());
  const StatusOr<store::QuarantineFile> parsed =
      store::ReadQuarantineJson(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().truncated);
  ASSERT_EQ(parsed.value().records.size(), 1u);
  // Optional fields absent in old files default cleanly.
  EXPECT_EQ(parsed.value().records[0].request_id, 0u);
  fs::remove(path);
}

TEST(QuarantineFileTest, RejectsForeignSchema) {
  const std::string path = TempPath("quarantine_bad.json");
  ASSERT_TRUE(
      store::WriteFileDurable(path, "{\"schema\": \"other\"}").ok());
  const StatusOr<store::QuarantineFile> parsed =
      store::ReadQuarantineJson(path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store::ReadQuarantineJson(TempPath("no_such_quarantine.json"))
                .status()
                .code(),
            StatusCode::kNotFound);
  fs::remove(path);
}

/// A 6-row source with stable ids 100..105; row 3 (id 103) still carries a
/// NaN feature, everything else is clean.
Dataset CorrectedSource() {
  Matrix features(6, 2);
  for (size_t r = 0; r < 6; ++r) {
    features.Row(r)[0] = static_cast<float>(r);
    features.Row(r)[1] = 1.0f;
  }
  features.Row(3)[1] = std::numeric_limits<float>::quiet_NaN();
  return MakeDataset(std::move(features), {0, 1, 0, 1, 0, 1},
                     {0, 1, 0, 1, 0, 1}, /*num_classes=*/2,
                     /*first_id=*/100);
}

store::QuarantineFile ReplayLog() {
  store::QuarantineFile log;
  log.total = 4;
  log.capacity = 16;
  const auto add = [&log](uint64_t sample_id, const std::string& reason) {
    store::QuarantineFileRecord record;
    record.request = 1;
    record.sample_id = sample_id;
    record.row = sample_id;
    record.reason = reason;
    log.records.push_back(record);
  };
  add(101, "non_finite_feature");   // fixed upstream -> readmitted
  add(103, "non_finite_feature");   // still NaN in the source
  add(999, "observed_label_out_of_range");  // id absent from the source
  add(101, "non_finite_feature");   // duplicate, deduped by id
  return log;
}

TEST(ReplayQuarantineTest, VerdictsCoverReadmittedRejectedAndMissing) {
  const store::QuarantineFile log = ReplayLog();
  const Dataset source = CorrectedSource();
  const StatusOr<store::ReplayReport> report =
      store::ReplayQuarantine(log, source, /*platform=*/nullptr,
                              /*request_id=*/7);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const store::ReplayReport& r = report.value();
  EXPECT_EQ(r.request_id, 7u);
  EXPECT_EQ(r.records, 3u);  // 4 log records, one duplicate id
  EXPECT_EQ(r.replayed, 2u);
  EXPECT_EQ(r.missing, 1u);
  EXPECT_EQ(r.readmitted, 1u);
  EXPECT_EQ(r.still_rejected, 1u);
  EXPECT_EQ(r.still_rejected_by_reason[static_cast<size_t>(
                RejectionReason::kNonFiniteFeature)],
            1u);
  EXPECT_FALSE(r.all_readmitted());
  EXPECT_FALSE(r.processed);

  ASSERT_EQ(r.outcomes.size(), 3u);  // log order, deduplicated
  EXPECT_EQ(r.outcomes[0].sample_id, 101u);
  EXPECT_EQ(r.outcomes[0].verdict, "readmitted");
  EXPECT_EQ(r.outcomes[0].source_row, 1u);
  EXPECT_EQ(r.outcomes[1].sample_id, 103u);
  EXPECT_EQ(r.outcomes[1].verdict, "still_rejected");
  EXPECT_EQ(r.outcomes[1].reason, "non_finite_feature");
  EXPECT_EQ(r.outcomes[2].sample_id, 999u);
  EXPECT_EQ(r.outcomes[2].verdict, "missing");
  // The recorded reason is surfaced for context, never trusted.
  EXPECT_EQ(r.outcomes[0].prior_reason, "non_finite_feature");
}

TEST(ReplayQuarantineTest, AllCleanSourceReadmitsEverything) {
  store::QuarantineFile log = ReplayLog();
  log.records.erase(log.records.begin() + 2);  // drop the missing id
  Dataset source = CorrectedSource();
  source.features.Row(3)[1] = 1.0f;  // fix the NaN too
  const StatusOr<store::ReplayReport> report =
      store::ReplayQuarantine(log, source, nullptr, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records, 2u);
  EXPECT_EQ(report.value().readmitted, 2u);
  EXPECT_TRUE(report.value().all_readmitted());
}

TEST(ReplayQuarantineTest, ReadmittedRowsFlowThroughPlatform) {
  const Workload workload =
      BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  DataPlatformConfig config;
  config.enld.general = testing_util::TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload.inventory).ok());
  ASSERT_TRUE(platform.Process(workload.incremental[0]).ok());
  const uint64_t requests_before = platform.stats().requests;

  // Quarantine the first three rows of the next incremental batch, then
  // replay them against the (clean) batch as the corrected source.
  const Dataset& source = workload.incremental[1];
  store::QuarantineFile log;
  log.total = 3;
  log.capacity = 16;
  for (size_t row = 0; row < 3; ++row) {
    store::QuarantineFileRecord record;
    record.request = 2;
    record.sample_id = source.ids[row];
    record.row = row;
    record.reason = "non_finite_feature";
    log.records.push_back(record);
  }

  const StatusOr<store::ReplayReport> report =
      store::ReplayQuarantine(log, source, &platform, /*request_id=*/99);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().readmitted, 3u);
  EXPECT_TRUE(report.value().processed);
  EXPECT_EQ(report.value().process_status, "ok");
  EXPECT_EQ(platform.stats().requests, requests_before + 1);

  // Determinism: an identical platform replaying the same log produces the
  // same verdicts and the same detection outcome.
  DataPlatform twin(config);
  ASSERT_TRUE(twin.Initialize(workload.inventory).ok());
  ASSERT_TRUE(twin.Process(workload.incremental[0]).ok());
  const StatusOr<store::ReplayReport> again =
      store::ReplayQuarantine(log, source, &twin, /*request_id=*/99);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().readmitted, report.value().readmitted);
  EXPECT_EQ(again.value().process_flagged_noisy,
            report.value().process_flagged_noisy);
}

TEST(ReplayQuarantineTest, EmptyLogIsANoOp) {
  const store::QuarantineFile log;
  const StatusOr<store::ReplayReport> report =
      store::ReplayQuarantine(log, CorrectedSource(), nullptr, 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().records, 0u);
  EXPECT_FALSE(report.value().processed);
  EXPECT_FALSE(report.value().all_readmitted());
}

TEST(ReplayQuarantineTest, ReportJsonCarriesSchemaAndVerdicts) {
  const StatusOr<store::ReplayReport> report =
      store::ReplayQuarantine(ReplayLog(), CorrectedSource(), nullptr, 7);
  ASSERT_TRUE(report.ok());
  const std::string path = TempPath("replay_report.json");
  ASSERT_TRUE(store::WriteReplayReportJson(report.value(), path).ok());
  const StatusOr<std::string> raw = store::ReadFile(path);
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw.value().find("\"enld-replay-v1\""), std::string::npos);
  EXPECT_NE(raw.value().find("\"readmitted\""), std::string::npos);
  EXPECT_NE(raw.value().find("\"missing\""), std::string::npos);
  fs::remove(path);
}

}  // namespace
}  // namespace enld
