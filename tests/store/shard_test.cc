// Shard format contract: byte-exact round trips for arbitrary datasets
// (missing labels included), CSV interoperability, and typed rejection of
// every corruption class the per-section CRCs are meant to catch.

#include "store/shard.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/serialization.h"
#include "store/io.h"

namespace enld {
namespace {

using store::BinaryReader;
using store::Crc32;
using store::DecodeDatasetShard;
using store::EncodeDatasetShard;
using store::LoadDatasetShard;
using store::SaveDatasetShard;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// A random dataset: Gaussian features, uniform labels, ~15% noisy,
/// ~10% missing observed labels, non-contiguous ids.
Dataset RandomDataset(size_t rows, size_t dim, int classes, uint64_t seed) {
  Dataset d;
  d.num_classes = classes;
  d.features.Reset(rows, dim);
  Rng rng(seed);
  for (size_t i = 0; i < d.features.size(); ++i) {
    d.features.data()[i] = static_cast<float>(rng.Gaussian());
  }
  for (size_t i = 0; i < rows; ++i) {
    const int truth = static_cast<int>(rng.UniformInt(classes));
    int observed = truth;
    if (rng.Bernoulli(0.15)) {
      observed = static_cast<int>(rng.UniformInt(classes));
    }
    if (rng.Bernoulli(0.1)) observed = kMissingLabel;
    d.true_labels.push_back(truth);
    d.observed_labels.push_back(observed);
    d.ids.push_back(1000 + i * 7);
  }
  return d;
}

void ExpectDatasetsBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.dim(), b.dim());
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.observed_labels, b.observed_labels);
  EXPECT_EQ(a.true_labels, b.true_labels);
  EXPECT_EQ(a.ids, b.ids);
  for (size_t i = 0; i < a.features.size(); ++i) {
    ASSERT_EQ(a.features.data()[i], b.features.data()[i]) << "feature " << i;
  }
}

TEST(StoreIoTest, Crc32MatchesZlib) {
  // zlib.crc32(b"123456789") — the standard CRC-32 check value, so
  // tools/check_snapshot.py computes identical checksums.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string()), 0u);
}

TEST(StoreIoTest, PutReadRoundTrip) {
  std::string buffer;
  store::PutU8(&buffer, 0xAB);
  store::PutU32(&buffer, 0xDEADBEEFu);
  store::PutU64(&buffer, 0x0123456789ABCDEFull);
  store::PutI32(&buffer, -12345);
  store::PutF32(&buffer, 1.5f);
  store::PutF64(&buffer, -2.25);

  BinaryReader reader(buffer);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  float f32 = 0;
  double f64 = 0;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadI32(&i32));
  EXPECT_TRUE(reader.ReadF32(&f32));
  EXPECT_TRUE(reader.ReadF64(&f64));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -12345);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.ReadU8(&u8));  // Exhausted.
}

TEST(StoreIoTest, EncodingIsLittleEndianOnDisk) {
  std::string buffer;
  store::PutU32(&buffer, 0x01020304u);
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buffer[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buffer[3]), 0x01);
}

TEST(ShardTest, RoundTripPropertyOverRandomDatasets) {
  // Property check over varied geometries, all with missing labels mixed
  // in: decode(encode(d)) must be bit-identical to d.
  const struct {
    size_t rows, dim;
    int classes;
  } cases[] = {{1, 1, 2}, {17, 3, 4}, {64, 8, 5}, {301, 5, 9}};
  for (size_t c = 0; c < 4; ++c) {
    const Dataset original = RandomDataset(cases[c].rows, cases[c].dim,
                                           cases[c].classes, 100 + c);
    const auto decoded = DecodeDatasetShard(EncodeDatasetShard(original));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectDatasetsBitIdentical(original, decoded.value());
  }
}

TEST(ShardTest, EmptyDatasetRoundTrips) {
  Dataset empty;
  empty.num_classes = 3;
  const auto decoded = DecodeDatasetShard(EncodeDatasetShard(empty));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), 0u);
  EXPECT_EQ(decoded->num_classes, 3);
}

TEST(ShardTest, FileRoundTrip) {
  const Dataset original = RandomDataset(40, 6, 4, 7);
  const std::string path = TempPath("shard_roundtrip.bin");
  ASSERT_TRUE(SaveDatasetShard(original, path).ok());
  const auto loaded = LoadDatasetShard(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsBitIdentical(original, loaded.value());
  std::remove(path.c_str());
}

TEST(ShardTest, CsvAndShardFormatsRoundTripIdentically) {
  // CSV writes float32 features with 9 significant digits — enough to
  // reproduce every float exactly — so CSV -> shard -> decode must land on
  // the same bytes as the in-memory original.
  const Dataset original = RandomDataset(60, 5, 6, 11);
  const std::string csv_path = TempPath("csv_shard_interop.csv");
  ASSERT_TRUE(SaveDatasetCsv(original, csv_path).ok());
  const auto from_csv = LoadDatasetCsv(csv_path);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  ExpectDatasetsBitIdentical(original, from_csv.value());

  const auto from_shard =
      DecodeDatasetShard(EncodeDatasetShard(from_csv.value()));
  ASSERT_TRUE(from_shard.ok()) << from_shard.status().ToString();
  ExpectDatasetsBitIdentical(original, from_shard.value());

  // And back out to CSV: the shard decode feeds SaveDatasetCsv the exact
  // floats, so the two CSV files are byte-identical.
  const std::string csv2_path = TempPath("csv_shard_interop2.csv");
  ASSERT_TRUE(SaveDatasetCsv(from_shard.value(), csv2_path).ok());
  const auto bytes1 = store::ReadFile(csv_path);
  const auto bytes2 = store::ReadFile(csv2_path);
  ASSERT_TRUE(bytes1.ok() && bytes2.ok());
  EXPECT_EQ(bytes1.value(), bytes2.value());
  std::remove(csv_path.c_str());
  std::remove(csv2_path.c_str());
}

TEST(ShardTest, MissingFileIsNotFound) {
  const auto loaded = LoadDatasetShard(TempPath("no_such_shard.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ShardTest, RejectsBadMagic) {
  std::string encoded = EncodeDatasetShard(RandomDataset(5, 2, 2, 1));
  encoded[0] = 'X';
  const auto decoded = DecodeDatasetShard(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardTest, RejectsForeignEndianTag) {
  std::string encoded = EncodeDatasetShard(RandomDataset(5, 2, 2, 1));
  // Byte-swap the endian tag in place (offset 8, after the magic).
  std::swap(encoded[8], encoded[11]);
  std::swap(encoded[9], encoded[10]);
  const auto decoded = DecodeDatasetShard(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("byte-order"),
            std::string::npos);
}

TEST(ShardTest, RejectsTruncationAtEveryLength) {
  const std::string encoded = EncodeDatasetShard(RandomDataset(9, 3, 3, 2));
  // Every proper prefix must fail loudly (never crash, never succeed).
  for (size_t len = 0; len < encoded.size(); len += 13) {
    const auto decoded = DecodeDatasetShard(encoded.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardTest, RejectsFlippedByteInEverySection) {
  const std::string encoded = EncodeDatasetShard(RandomDataset(16, 4, 3, 3));
  // Flip one byte at a spread of offsets past the fixed header; every
  // flip must be rejected (section CRC, cross-check, or header check).
  for (size_t offset = 36; offset < encoded.size(); offset += 97) {
    std::string corrupted = encoded;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x40);
    const auto decoded = DecodeDatasetShard(corrupted);
    ASSERT_FALSE(decoded.ok()) << "flipped byte at " << offset;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardTest, RejectsTrailingGarbage) {
  std::string encoded = EncodeDatasetShard(RandomDataset(4, 2, 2, 4));
  encoded += "extra";
  const auto decoded = DecodeDatasetShard(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardTest, RejectsBitmapLabelDisagreement) {
  // Flip a missing-bitmap bit while keeping that section's CRC valid: the
  // decoder's bitmap-vs-observed cross-check must catch it. Rebuild the
  // shard by hand with a poisoned bitmap.
  Dataset d = RandomDataset(8, 2, 3, 5);
  d.observed_labels[2] = kMissingLabel;
  std::string encoded = EncodeDatasetShard(d);
  // Re-encode with the same library but a tampered dataset whose bitmap
  // would differ: simplest is to flip observed_labels after encoding the
  // bitmap — emulated by encoding a dataset whose label 2 is missing, then
  // decoding bytes where label 2 was patched to a real label *with* a
  // recomputed section CRC.
  Dataset patched = d;
  patched.observed_labels[2] = 0;
  const std::string other = EncodeDatasetShard(patched);
  // Splice: take `other`'s observed-label section into `encoded`'s bytes.
  // The two encodings differ only inside the observed section (features,
  // truth, ids identical), so a mismatched bitmap results.
  ASSERT_EQ(encoded.size(), other.size());
  std::string spliced = encoded;
  bool differs = false;
  for (size_t i = 0; i < spliced.size(); ++i) {
    if (encoded[i] != other[i]) {
      spliced[i] = other[i];
      differs = true;
    }
    // Stop before the bitmap section (last 1 + 16 bytes) so the bitmap
    // stays the original's.
    if (i + 17 >= spliced.size()) break;
  }
  ASSERT_TRUE(differs);
  const auto decoded = DecodeDatasetShard(spliced);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace enld
