#include "detect/registry.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "data/workload.h"
#include "detect/probe.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace enld {
namespace {

using detect::CreateDetector;
using detect::DetectorContext;
using detect::DetectorInfo;
using detect::DetectorOptions;
using detect::DetectorRegistry;
using detect::FindDetector;
using detect::ListDetectors;
using detect::OptionSpec;
using detect::OptionType;
using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

/// Minimal detector for registration-semantics tests: flags nothing.
class FakeDetector : public NoisyLabelDetector {
 public:
  explicit FakeDetector(std::string key) : key_(std::move(key)) {}
  void Setup(const Dataset&) override {}
  DetectionResult Detect(const Dataset& incremental) override {
    DetectionResult result;
    for (size_t i = 0; i < incremental.size(); ++i) {
      if (incremental.observed_labels[i] != kMissingLabel) {
        result.clean_indices.push_back(i);
      }
    }
    return result;
  }
  std::string name() const override { return key_; }

 private:
  std::string key_;
};

detect::DetectorFactory FakeFactory(const std::string& key) {
  return [key](const DetectorContext&, const detect::ParsedOptions&)
             -> StatusOr<std::unique_ptr<NoisyLabelDetector>> {
    return std::unique_ptr<NoisyLabelDetector>(
        std::make_unique<FakeDetector>(key));
  };
}

DetectorContext TinyContext() {
  DetectorContext context;
  context.general = TinyGeneralConfig();
  context.enld.general = TinyGeneralConfig();
  context.enld.iterations = 3;
  context.enld.steps_per_iteration = 3;
  return context;
}

void ExpectValidPartition(const Dataset& d, const DetectionResult& result) {
  std::set<size_t> seen;
  for (size_t i : result.clean_indices) EXPECT_TRUE(seen.insert(i).second);
  for (size_t i : result.noisy_indices) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), d.size() - d.MissingLabelIndices().size());
}

TEST(RegistryListTest, BuiltinsArePresentAndSorted) {
  const std::vector<DetectorInfo> detectors = ListDetectors();
  ASSERT_GE(detectors.size(), 9u);  // 7 existing + 3 new + enld variants.
  std::vector<std::string> keys;
  for (const DetectorInfo& info : detectors) keys.push_back(info.key);
  for (const char* expected :
       {"default", "cl1", "cl2", "topofilter", "o2u", "coteaching", "incv",
        "pls", "probe", "longremix", "enld", "enld-pseudo"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), expected), keys.end())
        << "missing builtin " << expected;
  }
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(RegistryListTest, FindReturnsInfoOrNull) {
  const DetectorInfo* info = FindDetector("topofilter");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->key, "topofilter");
  EXPECT_EQ(info->display_name, "Topofilter");
  EXPECT_FALSE(info->options.empty());
  EXPECT_EQ(FindDetector("no-such-detector"), nullptr);
}

// Round trip: every registered detector constructs by name, and the
// instance's canonical name / display name match its registration.
TEST(RegistryRoundTripTest, EveryKeyCreatesItsDetector) {
  for (const DetectorInfo& info : ListDetectors()) {
    auto detector = CreateDetector(info.key, {}, TinyContext());
    ASSERT_TRUE(detector.ok())
        << info.key << ": " << detector.status().ToString();
    EXPECT_EQ((*detector)->name(), info.key);
    EXPECT_EQ((*detector)->display_name(), info.display_name);
  }
}

TEST(RegistryRegisterTest, DuplicateKeyRejected) {
  detect::RegisterBuiltinDetectors();
  DetectorRegistry& registry = DetectorRegistry::Global();
  const std::string key = "zz-dup-probe";
  ASSERT_TRUE(registry.Register({key, "Dup", "test", {}}, FakeFactory(key))
                  .ok());
  const Status again =
      registry.Register({key, "Dup", "test", {}}, FakeFactory(key));
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(again.ToString().find(key), std::string::npos);
  // Existing builtin keys are protected the same way.
  EXPECT_EQ(registry.Register({"default", "Default", "test", {}},
                              FakeFactory("default"))
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryRegisterTest, NonCanonicalKeysRejected) {
  DetectorRegistry& registry = DetectorRegistry::Global();
  for (const std::string bad :
       {"", "UpperCase", "has space", "under_score", "-edge", "edge-",
        "sym!bol"}) {
    EXPECT_EQ(registry.Register({bad, "Bad", "test", {}}, FakeFactory(bad))
                  .code(),
              StatusCode::kInvalidArgument)
        << "key '" << bad << "' should be rejected";
  }
}

TEST(RegistryRegisterTest, DuplicateOptionKeyRejected) {
  DetectorRegistry& registry = DetectorRegistry::Global();
  const std::string key = "zz-dup-option";
  const Status status = registry.Register(
      {key,
       "DupOpt",
       "test",
       {{"epochs", OptionType::kInt, "1", "first", {}},
        {"epochs", OptionType::kInt, "2", "second", {}}}},
      FakeFactory(key));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// The typed error matrix of Create: unknown detector, unknown option,
// malformed value per type, allowed-set violation. Every error is
// kInvalidArgument and names the offender.
TEST(RegistryErrorTest, UnknownDetector) {
  auto detector = CreateDetector("no-such-detector");
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(detector.status().ToString().find("no-such-detector"),
            std::string::npos);
  // The message lists the registered keys, so typos are self-serviceable.
  EXPECT_NE(detector.status().ToString().find("topofilter"),
            std::string::npos);
}

TEST(RegistryErrorTest, UnknownOptionKey) {
  auto detector = CreateDetector("probe", {{"not_an_option", "3"}});
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(detector.status().ToString().find("not_an_option"),
            std::string::npos);
  EXPECT_NE(detector.status().ToString().find("sweep_points"),
            std::string::npos);
}

TEST(RegistryErrorTest, MalformedIntValue) {
  for (const std::string bad : {"banana", "3.5", "-2", "12x", ""}) {
    auto detector = CreateDetector("probe", {{"epochs", bad}});
    ASSERT_FALSE(detector.ok()) << "value '" << bad << "'";
    EXPECT_EQ(detector.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(detector.status().ToString().find("int"), std::string::npos);
  }
}

TEST(RegistryErrorTest, MalformedDoubleValue) {
  auto detector =
      CreateDetector("longremix", {{"seed_fraction", "not-a-number"}});
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(detector.status().ToString().find("double"), std::string::npos);
}

TEST(RegistryErrorTest, MalformedBoolValue) {
  auto detector = CreateDetector("topofilter", {{"mutual_knn", "maybe"}});
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(detector.status().ToString().find("bool"), std::string::npos);
}

TEST(RegistryErrorTest, AllowedSetViolation) {
  DetectorRegistry& registry = DetectorRegistry::Global();
  const std::string key = "zz-enum-option";
  ASSERT_TRUE(
      registry
          .Register({key,
                     "EnumOpt",
                     "test",
                     {{"mode", OptionType::kString, "fast", "test mode",
                       {"fast", "slow"}}}},
                    FakeFactory(key))
          .ok());
  EXPECT_TRUE(registry.Create(key, {{"mode", "slow"}}).ok());
  auto detector = registry.Create(key, {{"mode", "medium"}});
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(detector.status().ToString().find("medium"), std::string::npos);
}

TEST(RegistryErrorTest, ValidValuesOfEveryTypeAccepted) {
  EXPECT_TRUE(CreateDetector("probe", {{"epochs", "2"},
                                       {"sweep_points", "8"},
                                       {"seed", "42"}},
                             TinyContext())
                  .ok());
  EXPECT_TRUE(CreateDetector("longremix", {{"seed_fraction", "0.5"}},
                             TinyContext())
                  .ok());
  EXPECT_TRUE(CreateDetector("topofilter",
                             {{"mutual_knn", "false"},
                              {"component_keep_ratio", "0.9"}},
                             TinyContext())
                  .ok());
}

class DetectQualityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  /// Runs a registry detector over the tiny stream; returns mean F1.
  static double MeanF1(const std::string& key) {
    auto detector = CreateDetector(key, {}, TinyContext());
    EXPECT_TRUE(detector.ok()) << detector.status().ToString();
    (*detector)->Setup(workload_->inventory);
    double f1_sum = 0.0;
    for (const Dataset& incremental : workload_->incremental) {
      const DetectionResult result = (*detector)->Detect(incremental);
      ExpectValidPartition(incremental, result);
      f1_sum += EvaluateDetection(incremental, result.noisy_indices).f1;
    }
    return f1_sum / static_cast<double>(workload_->incremental.size());
  }

  static Workload* workload_;
};

Workload* DetectQualityTest::workload_ = nullptr;

// The three new detectors must beat chance by a wide margin on the tiny
// workload (noise 0.2 => flagging everything scores F1 ~0.33). Measured
// means: pls ~0.73, probe ~0.54, longremix ~0.83.
TEST_F(DetectQualityTest, PlsDetectsNoise) { EXPECT_GT(MeanF1("pls"), 0.55); }

TEST_F(DetectQualityTest, ProbeDetectsNoise) {
  EXPECT_GT(MeanF1("probe"), 0.40);
}

TEST_F(DetectQualityTest, LongRemixDetectsNoise) {
  EXPECT_GT(MeanF1("longremix"), 0.60);
}

/// Registry-created and directly-constructed detectors must produce
/// identical verdicts — creation path and thread count never change
/// results (the library-wide determinism contract).
class RegistryDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreads(0); }

  static std::vector<DetectionResult> RunStream(NoisyLabelDetector* detector,
                                                const Workload& workload) {
    detector->Setup(workload.inventory);
    std::vector<DetectionResult> results;
    for (const Dataset& incremental : workload.incremental) {
      results.push_back(detector->Detect(incremental));
    }
    return results;
  }

  static void ExpectSameVerdicts(const std::vector<DetectionResult>& a,
                                 const std::vector<DetectionResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].noisy_indices, b[i].noisy_indices) << "request " << i;
      EXPECT_EQ(a[i].clean_indices, b[i].clean_indices) << "request " << i;
    }
  }
};

TEST_F(RegistryDeterminismTest, RegistryMatchesDirectAcrossThreadCounts) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  for (const std::string key : {"probe", "pls"}) {
    SetParallelThreads(1);
    auto registry_made = CreateDetector(key, {}, TinyContext());
    ASSERT_TRUE(registry_made.ok());
    const std::vector<DetectionResult> sequential =
        RunStream(registry_made->get(), workload);

    SetParallelThreads(4);
    auto registry_made_parallel = CreateDetector(key, {}, TinyContext());
    ASSERT_TRUE(registry_made_parallel.ok());
    ExpectSameVerdicts(sequential,
                       RunStream(registry_made_parallel->get(), workload));
  }
}

TEST_F(RegistryDeterminismTest, DirectConstructionMatchesRegistry) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  SetParallelThreads(1);
  ProbeConfig config;
  config.general = TinyGeneralConfig();
  ProbeDetector direct(config);
  auto via_registry = CreateDetector("probe", {}, TinyContext());
  ASSERT_TRUE(via_registry.ok());
  ExpectSameVerdicts(RunStream(&direct, workload),
                     RunStream(via_registry->get(), workload));
}

}  // namespace
}  // namespace enld
