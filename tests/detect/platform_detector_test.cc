#include "detect/platform_detector.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "detect/registry.h"
#include "enld/platform.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

detect::DetectorContext TinyContext() {
  detect::DetectorContext context;
  context.general = TinyGeneralConfig();
  context.enld.general = TinyGeneralConfig();
  context.enld.iterations = 3;
  context.enld.steps_per_iteration = 3;
  return context;
}

DataPlatformConfig FastConfig(const std::string& detector = "enld") {
  DataPlatformConfig config;
  config.enld.general = TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  config.detector = detector;
  return config;
}

class PlatformDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* PlatformDetectorTest::workload_ = nullptr;

TEST_F(PlatformDetectorTest, NonEnldConfigRequiresInstallBeforeInitialize) {
  DataPlatform platform(FastConfig("probe"));
  const Status init = platform.Initialize(workload_->inventory);
  EXPECT_EQ(init.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(init.ToString().find("probe"), std::string::npos);
}

TEST_F(PlatformDetectorTest, ConfigurePlatformDetectorIsNoOpForEnld) {
  DataPlatform platform(FastConfig("enld"));
  EXPECT_TRUE(
      detect::ConfigurePlatformDetector(&platform, TinyContext()).ok());
  EXPECT_TRUE(platform.Initialize(workload_->inventory).ok());
  EXPECT_TRUE(platform.Process(workload_->incremental[0]).ok());
}

TEST_F(PlatformDetectorTest, EnldWithOptionsRejected) {
  DataPlatformConfig config = FastConfig("enld");
  config.detector_options = {{"epochs", "3"}};
  DataPlatform platform(config);
  const Status status =
      detect::ConfigurePlatformDetector(&platform, TinyContext());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(PlatformDetectorTest, RegistryDetectorServesRequests) {
  DataPlatformConfig config = FastConfig("probe");
  config.detector_options = {{"sweep_points", "16"}};
  DataPlatform platform(config);
  ASSERT_TRUE(
      detect::ConfigurePlatformDetector(&platform, TinyContext()).ok());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  EXPECT_EQ(platform.active_detector().name(), "probe");

  for (const Dataset& incremental : workload_->incremental) {
    const auto result = platform.Process(incremental);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->noisy_indices.size() + result->clean_indices.size(),
              incremental.size() -
                  incremental.MissingLabelIndices().size());
  }
  EXPECT_EQ(platform.stats().requests, workload_->incremental.size());
}

TEST_F(PlatformDetectorTest, ConfigureSurfacesRegistryErrors) {
  {
    DataPlatform platform(FastConfig("no-such-detector"));
    EXPECT_EQ(detect::ConfigurePlatformDetector(&platform, TinyContext())
                  .code(),
              StatusCode::kInvalidArgument);
  }
  {
    DataPlatformConfig config = FastConfig("probe");
    config.detector_options = {{"epochs", "banana"}};
    DataPlatform platform(config);
    EXPECT_EQ(detect::ConfigurePlatformDetector(&platform, TinyContext())
                  .code(),
              StatusCode::kInvalidArgument);
  }
}

TEST_F(PlatformDetectorTest, InstallGuards) {
  // Null detector.
  {
    DataPlatform platform(FastConfig("probe"));
    EXPECT_EQ(platform.InstallDetector(nullptr).code(),
              StatusCode::kInvalidArgument);
  }
  // Name mismatch between config.detector and the instance.
  {
    DataPlatform platform(FastConfig("pls"));
    auto probe = detect::CreateDetector("probe", {}, TinyContext());
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(platform.InstallDetector(std::move(probe).value()).code(),
              StatusCode::kInvalidArgument);
  }
  // The built-in framework must not be shadowed.
  {
    DataPlatform platform(FastConfig("enld"));
    auto probe = detect::CreateDetector("probe", {}, TinyContext());
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(platform.InstallDetector(std::move(probe).value()).code(),
              StatusCode::kInvalidArgument);
  }
  // Too late after Initialize.
  {
    DataPlatform platform(FastConfig("enld"));
    ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
    auto probe = detect::CreateDetector("probe", {}, TinyContext());
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(platform.InstallDetector(std::move(probe).value()).code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST_F(PlatformDetectorTest, UpdatesAndSnapshotsRequireEnld) {
  DataPlatform platform(FastConfig("probe"));
  ASSERT_TRUE(
      detect::ConfigurePlatformDetector(&platform, TinyContext()).ok());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  ASSERT_TRUE(platform.Process(workload_->incremental[0]).ok());

  EXPECT_EQ(platform.Update().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(platform.SaveSnapshot("/tmp/enld-detector-snap-test").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      platform.RestoreFromSnapshot("/tmp/enld-detector-snap-test").code(),
      StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace enld
