// Cross-module property tests: statistical claims from the paper's
// corollaries and invariants that must hold for arbitrary seeds, swept
// with parameterized gtest.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/workload.h"
#include "enld/contrastive.h"
#include "enld/framework.h"
#include "eval/metrics.h"
#include "knn/kdtree.h"
#include "test_util.h"

namespace enld {
namespace {

// --- Corollary 1: P(class m not in label(D)) = (1 - P(ỹ=m|y*=m))^|D^m|.

TEST(Corollary1Test, MissingClassProbabilityMatchesFormula) {
  // Direct Monte-Carlo check of the corollary's model: |D^m| samples of
  // true class m, each kept with probability 1 - eta; the class is missing
  // from label(D) iff every one flips away.
  const double eta = 0.3;
  const size_t dm = 5;
  const auto transition = TransitionMatrix::PairAsymmetric(4, eta);
  Rng rng(1);
  const int trials = 40000;
  int missing = 0;
  for (int t = 0; t < trials; ++t) {
    bool any_kept = false;
    for (size_t i = 0; i < dm; ++i) {
      if (transition.SampleObserved(1, rng) == 1) any_kept = true;
    }
    if (!any_kept) ++missing;
  }
  const double expected = std::pow(eta, static_cast<double>(dm));
  EXPECT_NEAR(static_cast<double>(missing) / trials, expected,
              3.0 * std::sqrt(expected / trials) + 1e-4);
}

// --- Corollary 2: E[L(C)] equals the P̃-mixture of L(A).

TEST(Corollary2Test, ContrastiveLabelDistributionIsConditionalMixture) {
  // Candidate set: dense 1-D classes so every class is always available.
  const int classes = 3;
  const size_t per_class = 50;
  Matrix features(classes * per_class, 1);
  std::vector<int> labels(classes * per_class);
  for (int c = 0; c < classes; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      features(c * per_class + i, 0) =
          static_cast<float>(100 * c + static_cast<int>(i));
      labels[c * per_class + i] = c;
    }
  }
  Dataset candidate = MakeDataset(features, labels, {}, classes);
  std::vector<size_t> all(candidate.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  ClassKnnIndex index(candidate.features, candidate.observed_labels, all,
                      classes);

  // Ambiguous set: n samples all observed as class 0.
  const size_t n = 3000;
  Matrix d_features(n, 1, 50.0f);
  Dataset incremental =
      MakeDataset(d_features, std::vector<int>(n, 0), {}, classes);
  std::vector<size_t> ambiguous(n);
  for (size_t i = 0; i < n; ++i) ambiguous[i] = i;

  const std::vector<std::vector<double>> conditional = {
      {0.5, 0.2, 0.3}, {0, 1, 0}, {0, 0, 1}};
  Rng rng(2);
  const auto picks =
      ContrastiveSampling(incremental, ambiguous, incremental.features,
                          index, conditional, /*k=*/1, true, rng);
  ASSERT_EQ(picks.size(), n);
  std::vector<double> fraction(classes, 0.0);
  for (size_t p : picks) {
    fraction[candidate.observed_labels[p]] += 1.0 / n;
  }
  EXPECT_NEAR(fraction[0], 0.5, 0.03);
  EXPECT_NEAR(fraction[1], 0.2, 0.03);
  EXPECT_NEAR(fraction[2], 0.3, 0.03);
}

// --- End-to-end invariants over random seeds and noise rates.

struct EndToEndParam {
  uint64_t seed;
  double noise;
};

class EndToEndInvariants : public ::testing::TestWithParam<EndToEndParam> {};

TEST_P(EndToEndInvariants, DetectionIsAlwaysAValidPartition) {
  const EndToEndParam p = GetParam();
  Workload workload =
      BuildWorkload(testing_util::TinyWorkloadConfig(p.noise, p.seed));
  EnldConfig config;
  config.general = testing_util::TinyGeneralConfig();
  config.iterations = 2;
  config.steps_per_iteration = 3;
  EnldFramework enld(config);
  enld.Setup(workload.inventory);
  for (const Dataset& d : workload.incremental) {
    const DetectionResult r = enld.Detect(d);
    std::set<size_t> seen;
    for (size_t i : r.clean_indices) {
      EXPECT_LT(i, d.size());
      EXPECT_TRUE(seen.insert(i).second);
    }
    for (size_t i : r.noisy_indices) {
      EXPECT_LT(i, d.size());
      EXPECT_TRUE(seen.insert(i).second);
    }
    EXPECT_EQ(seen.size(), d.size());
    // Trajectories are consistent: the final snapshot is the clean set.
    ASSERT_FALSE(r.per_iteration_clean.empty());
    EXPECT_EQ(r.per_iteration_clean.back().size(), r.clean_indices.size());
    // At low/moderate noise, detection clearly beats the trivial
    // flag-everything baseline (at 0.4 flag-all's F1 is already ~0.57 and
    // the truncated 2-iteration test config need not clear it).
    if (p.noise <= 0.3) {
      const DetectionMetrics m = EvaluateDetection(d, r.noisy_indices);
      std::vector<size_t> everything;
      for (size_t i = 0; i < d.size(); ++i) everything.push_back(i);
      const DetectionMetrics flag_all = EvaluateDetection(d, everything);
      EXPECT_GE(m.f1 + 1e-9, flag_all.f1 * 0.8)
          << "seed=" << p.seed << " noise=" << p.noise;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndInvariants,
    ::testing::Values(EndToEndParam{11, 0.1}, EndToEndParam{12, 0.2},
                      EndToEndParam{13, 0.3}, EndToEndParam{14, 0.4},
                      EndToEndParam{15, 0.2}, EndToEndParam{16, 0.3}));

// --- KD-tree equivalence on adversarial geometries.

TEST(KdTreeAdversarialTest, CollinearPoints) {
  Matrix points(64, 4);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t c = 0; c < 4; ++c) {
      points(i, c) = static_cast<float>(i);  // All on a diagonal line.
    }
  }
  std::vector<size_t> rows(64);
  for (size_t i = 0; i < 64; ++i) rows[i] = i;
  KdTree tree(points, rows);
  const float query[4] = {31.4f, 31.4f, 31.4f, 31.4f};
  const auto fast = tree.Nearest(query, 5);
  const auto slow = BruteForceNearest(points, rows, query, 5);
  ASSERT_EQ(fast.size(), slow.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_FLOAT_EQ(fast[i].distance_squared, slow[i].distance_squared);
  }
}

TEST(KdTreeAdversarialTest, ManyDuplicatesPlusOutliers) {
  Matrix points(100, 2, 1.0f);
  points(99, 0) = 50.0f;
  points(98, 1) = -50.0f;
  std::vector<size_t> rows(100);
  for (size_t i = 0; i < 100; ++i) rows[i] = i;
  KdTree tree(points, rows);
  const float query[2] = {45.0f, 1.0f};
  const auto fast = tree.Nearest(query, 3);
  const auto slow = BruteForceNearest(points, rows, query, 3);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_FLOAT_EQ(fast[i].distance_squared, slow[i].distance_squared);
  }
  EXPECT_EQ(fast[0].index, 99u);
}

// --- Noise-model statistical property across rates and class counts.

class NoiseSweep
    : public ::testing::TestWithParam<std::tuple<double, int, uint64_t>> {};

TEST_P(NoiseSweep, ObservedMarginalMatchesTransitionRow) {
  const double eta = std::get<0>(GetParam());
  const int classes = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  const auto t = TransitionMatrix::PairAsymmetric(classes, eta);
  Rng rng(seed);
  const int n = 30000;
  std::vector<int> counts(classes, 0);
  for (int i = 0; i < n; ++i) ++counts[t.SampleObserved(0, rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 1.0 - eta, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, eta, 0.02);
  for (int c = 2; c < classes; ++c) EXPECT_EQ(counts[c], 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, NoiseSweep,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.4),
                       ::testing::Values(3, 20), ::testing::Values(1, 99)));

}  // namespace
}  // namespace enld
