#include "enld/admission.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "enld/platform.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

Dataset SmallCleanDataset() {
  Matrix features(6, 3);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      features.Row(r)[c] = static_cast<float>(r + c) * 0.5f;
    }
  }
  std::vector<int> observed = {0, 1, 2, 0, 1, 2};
  std::vector<int> truth = {0, 1, 2, 0, 2, 1};
  return MakeDataset(std::move(features), std::move(observed),
                     std::move(truth), /*num_classes=*/3);
}

bool Contains(const std::vector<size_t>& indices, size_t value) {
  return std::find(indices.begin(), indices.end(), value) != indices.end();
}

TEST(RejectionReasonTest, NamesAreStable) {
  EXPECT_STREQ(RejectionReasonName(RejectionReason::kNonFiniteFeature),
               "non_finite_feature");
  EXPECT_STREQ(
      RejectionReasonName(RejectionReason::kObservedLabelOutOfRange),
      "observed_label_out_of_range");
  EXPECT_STREQ(RejectionReasonName(RejectionReason::kTrueLabelOutOfRange),
               "true_label_out_of_range");
}

TEST(ScreenDatasetTest, CleanDatasetFullyAdmitted) {
  const Dataset dataset = SmallCleanDataset();
  const AdmissionResult result = ScreenDataset(dataset, 1);
  EXPECT_TRUE(result.all_admitted());
  EXPECT_EQ(result.admitted.size(), dataset.size());
  // Admitted rows come back in ascending order so Subset preserves order.
  EXPECT_TRUE(
      std::is_sorted(result.admitted.begin(), result.admitted.end()));
}

TEST(ScreenDatasetTest, NonFiniteFeatureRecordsColumnAndDetail) {
  Dataset dataset = SmallCleanDataset();
  dataset.features.Row(1)[2] = kNaN;
  dataset.features.Row(4)[0] = kInf;
  const AdmissionResult result = ScreenDataset(dataset, 7);
  ASSERT_EQ(result.rejected.size(), 2u);
  EXPECT_EQ(result.admitted.size(), 4u);
  EXPECT_FALSE(Contains(result.admitted, 1));
  EXPECT_FALSE(Contains(result.admitted, 4));

  const QuarantineRecord& first = result.rejected[0];
  EXPECT_EQ(first.request, 7u);
  EXPECT_EQ(first.row, 1u);
  EXPECT_EQ(first.reason, RejectionReason::kNonFiniteFeature);
  EXPECT_EQ(first.column, 2u);
  EXPECT_NE(first.detail.find("row 1"), std::string::npos);
  EXPECT_NE(first.detail.find("column 2"), std::string::npos);

  EXPECT_EQ(result.rejected[1].row, 4u);
  EXPECT_EQ(result.rejected[1].column, 0u);
}

TEST(ScreenDatasetTest, ObservedLabelOutOfRangeQuarantined) {
  Dataset dataset = SmallCleanDataset();
  dataset.observed_labels[2] = dataset.num_classes;  // one past the end
  dataset.observed_labels[5] = -7;
  const AdmissionResult result = ScreenDataset(dataset, 1);
  ASSERT_EQ(result.rejected.size(), 2u);
  EXPECT_EQ(result.rejected[0].reason,
            RejectionReason::kObservedLabelOutOfRange);
  EXPECT_EQ(result.rejected[0].row, 2u);
  EXPECT_EQ(result.rejected[1].row, 5u);
}

TEST(ScreenDatasetTest, MissingObservedLabelIsAdmitted) {
  Dataset dataset = SmallCleanDataset();
  dataset.observed_labels[3] = kMissingLabel;
  const AdmissionResult result = ScreenDataset(dataset, 1);
  EXPECT_TRUE(result.all_admitted());
}

TEST(ScreenDatasetTest, TrueLabelOutOfRangeQuarantined) {
  Dataset dataset = SmallCleanDataset();
  dataset.true_labels[0] = dataset.num_classes + 4;
  const AdmissionResult result = ScreenDataset(dataset, 1);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].reason,
            RejectionReason::kTrueLabelOutOfRange);
  EXPECT_EQ(result.rejected[0].row, 0u);
}

TEST(ScreenDatasetTest, FirstReasonWinsForMultiplyBrokenRow) {
  Dataset dataset = SmallCleanDataset();
  dataset.features.Row(2)[1] = kNaN;
  dataset.observed_labels[2] = -9;  // also broken, but features come first
  const AdmissionResult result = ScreenDataset(dataset, 1);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0].reason,
            RejectionReason::kNonFiniteFeature);
}

TEST(QuarantineLogTest, CapacityCapsRecordsButNotTotal) {
  QuarantineLog log(2);
  for (size_t i = 0; i < 5; ++i) {
    QuarantineRecord record;
    record.row = i;
    log.Add(std::move(record));
  }
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_TRUE(log.truncated());
  EXPECT_EQ(log.records()[0].row, 0u);
  EXPECT_EQ(log.records()[1].row, 1u);
  log.Clear();
  EXPECT_EQ(log.total(), 0u);
  EXPECT_TRUE(log.records().empty());
}

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

class AdmissionPlatformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* AdmissionPlatformTest::workload_ = nullptr;

// The acceptance criterion: a request carrying invalid samples quarantines
// them (visible in PlatformStats and the quarantine log) while the clean
// samples in the same request are still processed.
TEST_F(AdmissionPlatformTest, BadSamplesQuarantinedCleanOnesProcessed) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  Dataset request = workload_->incremental[0];
  ASSERT_GE(request.size(), 4u);
  request.features.Row(0)[0] = kNaN;
  request.observed_labels[2] = request.num_classes + 1;

  const StatusOr<DetectionResult> result = platform.Process(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const PlatformStats& stats = platform.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.samples_quarantined, 2u);
  EXPECT_EQ(stats.quarantined_by_reason[static_cast<size_t>(
                RejectionReason::kNonFiniteFeature)],
            1u);
  EXPECT_EQ(stats.quarantined_by_reason[static_cast<size_t>(
                RejectionReason::kObservedLabelOutOfRange)],
            1u);
  EXPECT_EQ(stats.requests_rejected, 0u);
  EXPECT_EQ(stats.samples_processed, request.size() - 2);

  ASSERT_EQ(platform.quarantine().records().size(), 2u);
  EXPECT_EQ(platform.quarantine().records()[0].request, 1u);
  EXPECT_EQ(platform.quarantine().records()[0].row, 0u);
  EXPECT_EQ(platform.quarantine().records()[1].row, 2u);

  // Result indices refer to the original request rows and never point at
  // a quarantined row.
  for (size_t idx : result->noisy_indices) {
    EXPECT_LT(idx, request.size());
    EXPECT_NE(idx, 0u);
    EXPECT_NE(idx, 2u);
  }
  for (size_t idx : result->clean_indices) {
    EXPECT_LT(idx, request.size());
    EXPECT_NE(idx, 0u);
    EXPECT_NE(idx, 2u);
  }
  // Every admitted row lands in exactly one of the two index sets.
  EXPECT_EQ(result->noisy_indices.size() + result->clean_indices.size(),
            request.size() - 2);
}

TEST_F(AdmissionPlatformTest, QuarantinedRowsExcludedFromRecovery) {
  DataPlatformConfig config = FastPlatformConfig();
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  Dataset request = workload_->incremental[0];
  request.observed_labels[1] = kMissingLabel;  // recoverable
  request.features.Row(0)[0] = kNaN;           // quarantined

  const StatusOr<DetectionResult> result = platform.Process(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (!result->recovered_labels.empty()) {
    // Remapped back to the original row count with quarantined rows left
    // unrecovered.
    ASSERT_EQ(result->recovered_labels.size(), request.size());
    EXPECT_EQ(result->recovered_labels[0], kMissingLabel);
  }
}

TEST_F(AdmissionPlatformTest, StrictModeRejectsWholeRequest) {
  DataPlatformConfig config = FastPlatformConfig();
  config.admission.strict = true;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  Dataset request = workload_->incremental[0];
  request.features.Row(3)[1] = kNaN;

  const StatusOr<DetectionResult> result = platform.Process(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("strict admission"),
            std::string::npos);

  const PlatformStats& stats = platform.stats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.requests_rejected, 1u);
  EXPECT_EQ(stats.samples_quarantined, 0u);
  EXPECT_TRUE(platform.quarantine().records().empty());

  // The clean version of the same request still goes through.
  EXPECT_TRUE(platform.Process(workload_->incremental[0]).ok());
}

TEST_F(AdmissionPlatformTest, FullyInvalidRequestRejected) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  Dataset request = workload_->incremental[0];
  for (size_t r = 0; r < request.size(); ++r) {
    request.features.Row(r)[0] = kNaN;
  }
  const StatusOr<DetectionResult> result = platform.Process(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const PlatformStats& stats = platform.stats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.requests_rejected, 1u);
  EXPECT_EQ(stats.samples_quarantined, request.size());
}

TEST_F(AdmissionPlatformTest, InitializeScreensInventory) {
  DataPlatform platform(FastPlatformConfig());
  Dataset inventory = workload_->inventory;
  inventory.features.Row(0)[0] = kNaN;
  inventory.observed_labels[1] = inventory.num_classes + 2;
  ASSERT_TRUE(platform.Initialize(inventory).ok());
  EXPECT_EQ(platform.stats().samples_quarantined, 2u);
  ASSERT_EQ(platform.quarantine().records().size(), 2u);
  // Initialize screens under request number 0.
  EXPECT_EQ(platform.quarantine().records()[0].request, 0u);
  // The screened platform still serves clean requests.
  EXPECT_TRUE(platform.Process(workload_->incremental[0]).ok());
}

TEST_F(AdmissionPlatformTest, QuarantineCapacityCapsPlatformLog) {
  DataPlatformConfig config = FastPlatformConfig();
  config.admission.quarantine_capacity = 1;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  Dataset request = workload_->incremental[0];
  request.features.Row(0)[0] = kNaN;
  request.features.Row(1)[0] = kNaN;
  request.features.Row(2)[0] = kNaN;
  ASSERT_TRUE(platform.Process(request).ok());

  EXPECT_EQ(platform.stats().samples_quarantined, 3u);
  EXPECT_EQ(platform.quarantine().records().size(), 1u);
  EXPECT_EQ(platform.quarantine().total(), 3u);
  EXPECT_TRUE(platform.quarantine().truncated());
}

TEST_F(AdmissionPlatformTest, DueUpdateBelowMinimumStaysPending) {
  DataPlatformConfig config = FastPlatformConfig();
  config.update_every = 1;
  config.min_update_samples = 1'000'000;  // never enough
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_EQ(platform.stats().model_updates, 0u);
  EXPECT_TRUE(platform.update_pending());
  EXPECT_EQ(platform.stats().update_retries,
            workload_->incremental.size());
}

TEST_F(AdmissionPlatformTest, PendingUpdateClearsOnSuccess) {
  DataPlatformConfig config = FastPlatformConfig();
  config.update_every = 2;
  config.min_update_samples = 1;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_GE(platform.stats().model_updates, 1u);
  EXPECT_FALSE(platform.update_pending());
}

}  // namespace
}  // namespace enld
