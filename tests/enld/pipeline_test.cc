// RequestPipeline coverage: the batched async path is byte-identical to
// the sequential serving loop at any thread count, deadline-blown requests
// degrade without stalling the queue behind them, shutdown drains every
// queued request, and deferred snapshot writes land (and garbage-collect)
// exactly like their synchronous counterparts.

#include "enld/pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/parallel.h"
#include "common/telemetry/metrics.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

/// Budget for the deadline test: a latency fire charges the full budget to
/// the deadline clock, so any value overruns; it is generous so the
/// legitimate requests behind the slow one never flake under sanitizer
/// slowdown.
constexpr double kBudget = 30.0;

/// Budget for the queue-shedding test: well below the ~100 ms real stall
/// of the slow request in front (so the queued request's wait alone
/// exceeds it), yet well above the dispatcher's dequeue latency (so the
/// slow request itself is not shed before it reaches the platform).
constexpr double kQueueBudget = 0.01;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  void SetUp() override { faults::Clear(); }
  void TearDown() override {
    faults::Clear();
    SetParallelThreads(0);
  }
  static Workload* workload_;
};

Workload* PipelineTest::workload_ = nullptr;

/// One request's worth of reference state from the sequential loop.
struct SequentialStep {
  DetectionResult result;
  size_t clean_bank = 0;
  PlatformStats stats;
};

std::vector<SequentialStep> RunSequential(const DataPlatformConfig& config,
                                          const Workload& workload) {
  DataPlatform platform(config);
  EXPECT_TRUE(platform.Initialize(workload.inventory).ok());
  std::vector<SequentialStep> steps;
  for (const Dataset& d : workload.incremental) {
    const auto result = platform.Process(d);
    EXPECT_TRUE(result.ok());
    SequentialStep step;
    step.result = result.value();
    step.clean_bank = platform.framework().selected_clean_count();
    step.stats = platform.stats();
    steps.push_back(std::move(step));
  }
  return steps;
}

TEST_F(PipelineTest, AsyncMatchesSequentialByteForByte) {
  const DataPlatformConfig config = FastPlatformConfig();
  const std::vector<SequentialStep> expected =
      RunSequential(config, *workload_);

  // The contract holds at any thread count: with one thread the deferred
  // work runs inline (the exact sequential path); with several it overlaps
  // the dispatcher.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetParallelThreads(threads);
    DataPlatform platform(config);
    ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

    PipelineConfig pipeline_config;
    pipeline_config.batch_size = 3;
    RequestPipeline pipeline(&platform, pipeline_config);
    std::vector<std::future<PipelineResponse>> futures;
    for (const Dataset& d : workload_->incremental) {
      futures.push_back(pipeline.Submit(d));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      SCOPED_TRACE("request=" + std::to_string(i));
      PipelineResponse response = futures[i].get();
      ASSERT_TRUE(response.result.ok());
      EXPECT_EQ(response.sequence, i + 1);
      const SequentialStep& want = expected[i];
      EXPECT_EQ(response.result->noisy_indices, want.result.noisy_indices);
      EXPECT_EQ(response.result->clean_indices, want.result.clean_indices);
      EXPECT_EQ(response.result->recovered_labels,
                want.result.recovered_labels);
      EXPECT_EQ(response.clean_bank_after, want.clean_bank);
      EXPECT_EQ(response.stats_after.requests, want.stats.requests);
      EXPECT_EQ(response.stats_after.samples_processed,
                want.stats.samples_processed);
      EXPECT_EQ(response.stats_after.samples_flagged_noisy,
                want.stats.samples_flagged_noisy);
      EXPECT_EQ(response.stats_after.model_updates,
                want.stats.model_updates);
    }
    EXPECT_TRUE(pipeline.Shutdown().ok());
    const RequestPipeline::Counters counters = pipeline.counters();
    EXPECT_EQ(counters.submitted, workload_->incremental.size());
    EXPECT_EQ(counters.completed, workload_->incremental.size());
    EXPECT_GE(counters.batches, 1u);
    EXPECT_LE(counters.largest_batch, 3u);
  }
}

TEST_F(PipelineTest, RecentRequestRingIsBoundedAndCarriesRequestIds) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  PipelineConfig pipeline_config;
  pipeline_config.recent_ring_capacity = 2;
  RequestPipeline pipeline(&platform, pipeline_config);

  const size_t n = workload_->incremental.size();
  ASSERT_GE(n, 3u);  // enough traffic to overflow a capacity-2 ring
  for (size_t i = 0; i < n; ++i) {
    SubmitOptions options;
    options.request_id = 500 + i;
    PipelineResponse response =
        pipeline.Submit(workload_->incremental[i], options).get();
    ASSERT_TRUE(response.result.ok());
    // The id and the stage breakdown ride back on the response.
    EXPECT_EQ(response.request_id, 500 + i);
    EXPECT_GT(response.process_seconds, 0.0);
    EXPECT_GE(response.admission_seconds, 0.0);
    EXPECT_GE(response.detect_seconds, 0.0);
  }

  // The ring keeps only the newest `recent_ring_capacity` records, oldest
  // first, each tagged with its client-set id.
  const std::vector<RequestRecord> recent = pipeline.RecentRequests();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].sequence, n - 1);
  EXPECT_EQ(recent[0].request_id, 500 + n - 2);
  EXPECT_EQ(recent[1].sequence, n);
  EXPECT_EQ(recent[1].request_id, 500 + n - 1);
  EXPECT_EQ(recent[1].status, StatusCode::kOk);
  EXPECT_GT(recent[1].process_seconds, 0.0);
  EXPECT_EQ(pipeline.queue_depth(), 0u);
  EXPECT_TRUE(pipeline.Shutdown().ok());
}

TEST_F(PipelineTest, DeadlineExceededRequestDoesNotStallQueue) {
  DataPlatformConfig config = FastPlatformConfig();
  config.request_deadline_seconds = kBudget;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  telemetry::Counter* exceeded =
      telemetry::MetricsRegistry::Global().GetCounter(
          "platform/deadline_exceeded");
  const uint64_t exceeded_before = exceeded->Value();

  // Only the first request is slow: its detection stalls past the budget.
  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);

  RequestPipeline pipeline(&platform, PipelineConfig{});
  std::vector<std::future<PipelineResponse>> futures;
  for (size_t i = 0; i < 3; ++i) {
    futures.push_back(pipeline.Submit(workload_->incremental[i]));
  }

  PipelineResponse slow = futures[0].get();
  ASSERT_FALSE(slow.result.ok());
  EXPECT_EQ(slow.result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(exceeded->Value(), exceeded_before + 1);

  // The requests queued behind the slow one complete normally.
  for (size_t i = 1; i < futures.size(); ++i) {
    PipelineResponse response = futures[i].get();
    ASSERT_TRUE(response.result.ok());
    EXPECT_EQ(response.stats_after.requests_deadline_exceeded, 1u);
  }
  EXPECT_TRUE(pipeline.Shutdown().ok());
  EXPECT_EQ(platform.stats().requests, 2u);
  ASSERT_EQ(platform.deadline_audit().size(), 1u);
  EXPECT_EQ(platform.deadline_audit()[0].stage, "detection");
}

TEST_F(PipelineTest, DropStaleInQueueShedsExpiredRequests) {
  DataPlatformConfig config = FastPlatformConfig();
  config.request_deadline_seconds = kQueueBudget;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  // The first request stalls ~100 ms (real) before admission and blows its
  // small budget there; the request queued behind it accumulates at
  // least that stall as queue wait — over the budget — before the
  // dispatcher picks it up.
  faults::ArmSite("platform/slow_admission", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  PipelineConfig pipeline_config;
  pipeline_config.drop_stale_in_queue = true;
  RequestPipeline pipeline(&platform, pipeline_config);

  auto slow = pipeline.Submit(workload_->incremental[0]);
  auto stale = pipeline.Submit(workload_->incremental[1]);
  EXPECT_EQ(slow.get().result.status().code(),
            StatusCode::kDeadlineExceeded);
  PipelineResponse shed = stale.get();
  EXPECT_EQ(shed.result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(shed.queue_seconds, kQueueBudget);
  EXPECT_TRUE(pipeline.Shutdown().ok());

  // The shed request never touched the platform.
  EXPECT_EQ(platform.stats().requests, 0u);
  EXPECT_EQ(platform.stats().requests_deadline_exceeded, 1u);
  EXPECT_EQ(pipeline.counters().queue_deadline_drops, 1u);
}

TEST_F(PipelineTest, QueueWaitBudgetIsDistinctFromServiceDeadline) {
  // No service deadline at all: shedding here can only come from the
  // dedicated queue-wait budget.
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  // The first request stalls ~100 ms (real) in admission; the request
  // queued behind it waits at least that long — over the queue budget.
  faults::ArmSite("platform/slow_admission", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  PipelineConfig pipeline_config;
  pipeline_config.drop_stale_in_queue = true;
  pipeline_config.queue_wait_budget_seconds = kQueueBudget;
  RequestPipeline pipeline(&platform, pipeline_config);

  auto slow = pipeline.Submit(workload_->incremental[0]);
  auto stale = pipeline.Submit(workload_->incremental[1]);
  // With no service deadline the slow request itself completes fine…
  EXPECT_TRUE(slow.get().result.ok());
  // …while the one behind it is shed purely for its queue wait.
  PipelineResponse shed = stale.get();
  EXPECT_EQ(shed.result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(shed.queue_seconds, kQueueBudget);
  EXPECT_TRUE(pipeline.Shutdown().ok());

  EXPECT_EQ(platform.stats().requests, 1u);
  EXPECT_EQ(platform.stats().requests_deadline_exceeded, 0u);
  const RequestPipeline::Counters counters = pipeline.counters();
  EXPECT_EQ(counters.queue_deadline_drops, 1u);
  EXPECT_EQ(counters.hol_blocked, 1u);
}

TEST_F(PipelineTest, HeadOfLineBlockingIsCountedWithoutShedding) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  telemetry::Counter* hol = telemetry::MetricsRegistry::Global().GetCounter(
      "pipeline/hol_blocked");
  const uint64_t hol_before = hol->Value();

  faults::ArmSite("platform/slow_admission", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  PipelineConfig pipeline_config;
  pipeline_config.queue_wait_budget_seconds = kQueueBudget;
  // drop_stale_in_queue stays off: the alarm counts, nothing is shed.
  RequestPipeline pipeline(&platform, pipeline_config);

  auto slow = pipeline.Submit(workload_->incremental[0]);
  auto blocked = pipeline.Submit(workload_->incremental[1]);
  EXPECT_TRUE(slow.get().result.ok());
  PipelineResponse response = blocked.get();
  EXPECT_TRUE(response.result.ok());
  EXPECT_GT(response.queue_seconds, kQueueBudget);
  EXPECT_TRUE(pipeline.Shutdown().ok());

  // Both requests were served; the blocked one was counted as HOL-hit.
  EXPECT_EQ(platform.stats().requests, 2u);
  EXPECT_EQ(pipeline.counters().hol_blocked, 1u);
  EXPECT_EQ(pipeline.counters().queue_deadline_drops, 0u);
  EXPECT_EQ(hol->Value(), hol_before + 1);
}

TEST_F(PipelineTest, SubmitOptionsDeadlineOverridesPlatformBudget) {
  // The platform itself has no deadline; only the per-request override
  // (the RPC front-end's wire header path) imposes one.
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  RequestPipeline pipeline(&platform, PipelineConfig{});

  SubmitOptions bounded;
  bounded.deadline_seconds = kBudget;
  auto slow = pipeline.Submit(workload_->incremental[0], bounded);
  auto plain = pipeline.Submit(workload_->incremental[1]);

  // The stall charges the overridden budget, so the bounded request blows
  // its deadline while the default-budget (= none) request is unaffected.
  EXPECT_EQ(slow.get().result.status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(plain.get().result.ok());
  EXPECT_TRUE(pipeline.Shutdown().ok());

  ASSERT_EQ(platform.deadline_audit().size(), 1u);
  EXPECT_EQ(platform.deadline_audit()[0].budget_seconds, kBudget);
}

TEST_F(PipelineTest, ShutdownDrainsEveryQueuedRequest) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  RequestPipeline pipeline(&platform, PipelineConfig{});
  std::vector<std::future<PipelineResponse>> futures;
  for (const Dataset& d : workload_->incremental) {
    futures.push_back(pipeline.Submit(d));
  }
  // Shutdown drains: every already-submitted request still completes.
  ASSERT_TRUE(pipeline.Shutdown().ok());
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().result.ok());
  }
  EXPECT_EQ(platform.stats().requests, workload_->incremental.size());

  // After shutdown, submission fails fast instead of hanging.
  PipelineResponse rejected =
      pipeline.Submit(workload_->incremental[0]).get();
  ASSERT_FALSE(rejected.result.ok());
  EXPECT_EQ(rejected.result.status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, DeferredSnapshotsLandAndGarbageCollect) {
  const std::string root =
      (fs::path(::testing::TempDir()) / "pipeline_snapshots").string();
  fs::remove_all(root);

  DataPlatformConfig config = FastPlatformConfig();
  config.snapshot_keep_last = 2;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  PipelineConfig pipeline_config;
  pipeline_config.batch_size = 2;
  pipeline_config.snapshot_capture = [&platform, root] {
    return platform.BeginSnapshot(root);
  };
  RequestPipeline pipeline(&platform, pipeline_config);
  std::vector<std::future<PipelineResponse>> futures;
  for (const Dataset& d : workload_->incremental) {
    futures.push_back(pipeline.Submit(d));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().result.ok());
  }
  ASSERT_TRUE(pipeline.Shutdown().ok());
  EXPECT_EQ(pipeline.counters().snapshot_writes,
            workload_->incremental.size());

  // One snapshot per request was written; retention kept the newest two,
  // and CURRENT points at the last one.
  store::SnapshotStore snapshots(root);
  EXPECT_EQ(snapshots.ListSeqs().size(), 2u);
  const auto latest = snapshots.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().seq, workload_->incremental.size());
  EXPECT_EQ(latest.value().stats.requests, workload_->incremental.size());
  fs::remove_all(root);
}

}  // namespace
}  // namespace enld
