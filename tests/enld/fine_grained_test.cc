#include "enld/fine_grained.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/noise.h"
#include "enld/framework.h"
#include "eval/metrics.h"
#include "nn/confident_joint.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

/// Shared expensive fixture: one workload + one general model, reused by
/// every test in this file.
class FineGrainedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
    general_ = new GeneralModel(
        InitGeneralModel(workload_->inventory, TinyGeneralConfig()));
    conditional_ = new std::vector<std::vector<double>>(ConditionalFromJoint(
        EstimateJointCounts(general_->model.get(),
                            general_->candidate_set)));
  }
  static void TearDownTestSuite() {
    delete conditional_;
    delete general_;
    delete workload_;
    conditional_ = nullptr;
    general_ = nullptr;
    workload_ = nullptr;
  }

  /// Runs fine-grained detection on incremental dataset `idx` with `config`
  /// against a fresh copy of the general model.
  FineGrainedOutputs Run(const EnldConfig& config, size_t idx = 0,
                         const Dataset* override_data = nullptr) {
    const Dataset& data =
        override_data != nullptr ? *override_data : workload_->incremental[idx];
    Rng model_rng(1234);
    MlpModel finetuned(general_->model->layer_dims(), model_rng);
    finetuned.SetWeights(general_->model->GetWeights());
    FineGrainedInputs inputs;
    inputs.model = &finetuned;
    inputs.incremental = &data;
    inputs.candidate = &general_->candidate_set;
    inputs.conditional = conditional_;
    Rng rng(config.seed);
    return FineGrainedDetect(inputs, config, rng);
  }

  static EnldConfig FastConfig() {
    EnldConfig config;
    config.general = TinyGeneralConfig();
    config.iterations = 3;
    config.steps_per_iteration = 3;
    return config;
  }

  static Workload* workload_;
  static GeneralModel* general_;
  static std::vector<std::vector<double>>* conditional_;
};

Workload* FineGrainedTest::workload_ = nullptr;
GeneralModel* FineGrainedTest::general_ = nullptr;
std::vector<std::vector<double>>* FineGrainedTest::conditional_ = nullptr;

TEST_F(FineGrainedTest, CleanAndNoisyPartitionLabeledSamples) {
  const FineGrainedOutputs out = Run(FastConfig());
  const Dataset& d = workload_->incremental[0];
  std::set<size_t> seen;
  for (size_t i : out.result.clean_indices) {
    EXPECT_TRUE(seen.insert(i).second);
  }
  for (size_t i : out.result.noisy_indices) {
    EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), d.size() - d.MissingLabelIndices().size());
}

TEST_F(FineGrainedTest, TrajectoriesHaveOneEntryPerIteration) {
  EnldConfig config = FastConfig();
  config.iterations = 4;
  const FineGrainedOutputs out = Run(config);
  EXPECT_EQ(out.result.per_iteration_clean.size(), 4u);
  EXPECT_EQ(out.result.per_iteration_ambiguous.size(), 4u);
}

TEST_F(FineGrainedTest, CleanSetGrowsMonotonically) {
  const FineGrainedOutputs out = Run(FastConfig());
  for (size_t i = 1; i < out.result.per_iteration_clean.size(); ++i) {
    EXPECT_GE(out.result.per_iteration_clean[i].size(),
              out.result.per_iteration_clean[i - 1].size());
  }
  // Final clean set equals the last snapshot.
  EXPECT_EQ(out.result.clean_indices.size(),
            out.result.per_iteration_clean.back().size());
}

TEST_F(FineGrainedTest, AmbiguousCountShrinks) {
  // Fig. 13(b): |A| decreases as fine-tuning adapts. Compare first vs last.
  EnldConfig config = FastConfig();
  config.iterations = 4;
  const FineGrainedOutputs out = Run(config);
  EXPECT_LE(out.result.per_iteration_ambiguous.back(),
            out.result.per_iteration_ambiguous.front());
}

TEST_F(FineGrainedTest, DetectionBeatsChance) {
  const FineGrainedOutputs out = Run(FastConfig());
  const Dataset& d = workload_->incremental[0];
  const DetectionMetrics m = EvaluateDetection(d, out.result.noisy_indices);
  // Chance precision equals the noise rate (0.2); require clearly better.
  EXPECT_GT(m.precision, 0.4);
  EXPECT_GT(m.recall, 0.4);
}

TEST_F(FineGrainedTest, DeterministicGivenSeed) {
  const FineGrainedOutputs a = Run(FastConfig());
  const FineGrainedOutputs b = Run(FastConfig());
  EXPECT_EQ(a.result.noisy_indices, b.result.noisy_indices);
  EXPECT_EQ(a.selected_candidate, b.selected_candidate);
}

TEST_F(FineGrainedTest, MajorityVotingStricterThanWithout) {
  EnldConfig with = FastConfig();
  EnldConfig without = FastConfig();
  without.ablation.use_majority_voting = false;
  const size_t clean_with = Run(with).result.clean_indices.size();
  const size_t clean_without = Run(without).result.clean_indices.size();
  // ENLD-2 admits on a single agreeing step -> at least as many cleans.
  EXPECT_GE(clean_without, clean_with);
}

TEST_F(FineGrainedTest, SelectedCandidatesAreMostlyClean) {
  const FineGrainedOutputs out = Run(FastConfig());
  const Dataset& candidate = general_->candidate_set;
  ASSERT_FALSE(out.selected_candidate.empty());
  size_t actually_clean = 0;
  for (size_t pos : out.selected_candidate) {
    ASSERT_LT(pos, candidate.size());
    if (candidate.observed_labels[pos] == candidate.true_labels[pos]) {
      ++actually_clean;
    }
  }
  EXPECT_GT(static_cast<double>(actually_clean) /
                static_cast<double>(out.selected_candidate.size()),
            0.9);
}

TEST_F(FineGrainedTest, MissingLabelsRecovered) {
  Dataset data = workload_->incremental[0];
  Rng rng(55);
  const auto masked = MaskMissingLabels(&data, 0.3, rng);
  EnldConfig config = FastConfig();
  const FineGrainedOutputs out = Run(config, 0, &data);
  ASSERT_EQ(out.result.recovered_labels.size(), data.size());
  // Every masked sample gets some recovered label.
  for (size_t pos : masked) {
    EXPECT_NE(out.result.recovered_labels[pos], kMissingLabel);
  }
  // Recovery accuracy must beat chance by a wide margin.
  const double acc =
      PseudoLabelAccuracy(data, out.result.recovered_labels, masked);
  EXPECT_GT(acc, 0.5);
  // Labeled positions carry no recovered label.
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.observed_labels[i] != kMissingLabel) {
      EXPECT_EQ(out.result.recovered_labels[i], kMissingLabel);
    }
  }
}

TEST_F(FineGrainedTest, MissingRecoveryCanBeDisabled) {
  Dataset data = workload_->incremental[0];
  Rng rng(56);
  MaskMissingLabels(&data, 0.3, rng);
  EnldConfig config = FastConfig();
  config.recover_missing_labels = false;
  const FineGrainedOutputs out = Run(config, 0, &data);
  EXPECT_TRUE(out.result.recovered_labels.empty());
}

TEST_F(FineGrainedTest, AblationsChangeBehaviour) {
  // On a small easy workload individual datasets may coincide, so compare
  // across all datasets and require that at least one switch changes at
  // least one outcome (each switch is exercised end-to-end regardless).
  int differing = 0;
  for (int which = 0; which < 4; ++which) {
    EnldConfig config = FastConfig();
    switch (which) {
      case 0: config.ablation.use_contrastive = false; break;
      case 1: config.ablation.use_majority_voting = false; break;
      case 2: config.ablation.merge_clean_into_c = false; break;
      case 3: config.ablation.use_probability_label = false; break;
    }
    for (size_t idx = 0; idx < workload_->incremental.size(); ++idx) {
      const auto base = Run(FastConfig(), idx).result.noisy_indices;
      if (Run(config, idx).result.noisy_indices != base) {
        ++differing;
        break;
      }
    }
  }
  EXPECT_GE(differing, 1);
}

TEST_F(FineGrainedTest, AlternativePoliciesRun) {
  for (SamplingPolicy policy :
       {SamplingPolicy::kRandom, SamplingPolicy::kHighestConfidence,
        SamplingPolicy::kLeastConfidence, SamplingPolicy::kEntropy,
        SamplingPolicy::kPseudo}) {
    EnldConfig config = FastConfig();
    config.policy = policy;
    const FineGrainedOutputs out = Run(config);
    const Dataset& d = workload_->incremental[0];
    EXPECT_EQ(out.result.clean_indices.size() +
                  out.result.noisy_indices.size(),
              d.size())
        << SamplingPolicyName(policy);
  }
}

TEST_F(FineGrainedTest, ZeroIterationsYieldsAllNoisy) {
  EnldConfig config = FastConfig();
  config.iterations = 0;
  const FineGrainedOutputs out = Run(config);
  // No iteration ever selects clean samples; everything stays in N.
  EXPECT_TRUE(out.result.clean_indices.empty());
  EXPECT_TRUE(out.selected_candidate.empty());
}

TEST_F(FineGrainedTest, AllContrastiveSizesProduceValidPartitions) {
  // k = 1..4 (the Fig. 11 sweep) must all run and partition the dataset.
  const Dataset& d = workload_->incremental[0];
  for (size_t k = 1; k <= 4; ++k) {
    EnldConfig config = FastConfig();
    config.contrastive_k = k;
    const FineGrainedOutputs out = Run(config);
    EXPECT_EQ(out.result.clean_indices.size() +
                  out.result.noisy_indices.size(),
              d.size())
        << "k=" << k;
  }
}

}  // namespace
}  // namespace enld
