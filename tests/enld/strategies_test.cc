#include "enld/strategies.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace enld {
namespace {

/// Probabilities where row r has max-confidence (r+1)/(n+1) concentrated on
/// class 0 and the remainder spread over class 1.
Matrix GradedProbs(size_t n) {
  Matrix probs(n, 2);
  for (size_t r = 0; r < n; ++r) {
    const float p = static_cast<float>(r + 1) / static_cast<float>(n + 1);
    probs(r, 0) = p;
    probs(r, 1) = 1.0f - p;
  }
  return probs;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

TEST(PolicyNamesTest, MatchPaperLegends) {
  EXPECT_STREQ(SamplingPolicyName(SamplingPolicy::kContrastive), "ENLD");
  EXPECT_STREQ(SamplingPolicyName(SamplingPolicy::kRandom), "Random-ENLD");
  EXPECT_STREQ(SamplingPolicyName(SamplingPolicy::kHighestConfidence),
               "HC-ENLD");
  EXPECT_STREQ(SamplingPolicyName(SamplingPolicy::kLeastConfidence),
               "LC-ENLD");
  EXPECT_STREQ(SamplingPolicyName(SamplingPolicy::kEntropy),
               "Entropy-ENLD");
  EXPECT_STREQ(SamplingPolicyName(SamplingPolicy::kPseudo), "Pseudo-ENLD");
}

TEST(PolicyNamesTest, CanonicalKeysAreLowercase) {
  EXPECT_STREQ(SamplingPolicyKey(SamplingPolicy::kContrastive), "enld");
  EXPECT_STREQ(SamplingPolicyKey(SamplingPolicy::kRandom), "enld-random");
  EXPECT_STREQ(SamplingPolicyKey(SamplingPolicy::kHighestConfidence),
               "enld-hc");
  EXPECT_STREQ(SamplingPolicyKey(SamplingPolicy::kLeastConfidence),
               "enld-lc");
  EXPECT_STREQ(SamplingPolicyKey(SamplingPolicy::kEntropy), "enld-entropy");
  EXPECT_STREQ(SamplingPolicyKey(SamplingPolicy::kPseudo), "enld-pseudo");
}

TEST(RowEntropiesTest, UniformHasMaxEntropy) {
  Matrix probs(2, 4);
  for (size_t c = 0; c < 4; ++c) probs(0, c) = 0.25f;
  probs(1, 0) = 1.0f;
  const auto entropy = RowEntropies(probs);
  EXPECT_NEAR(entropy[0], std::log(4.0), 1e-5);
  EXPECT_NEAR(entropy[1], 0.0, 1e-9);
}

TEST(PolicySamplingTest, RandomSamplesWithoutReplacement) {
  const Matrix probs = GradedProbs(20);
  Rng rng(1);
  const auto picks = PolicySampling(SamplingPolicy::kRandom, probs,
                                    AllRows(20), 10, rng);
  EXPECT_EQ(picks.size(), 10u);
  std::set<size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(PolicySamplingTest, HighestConfidencePicksTop) {
  const Matrix probs = GradedProbs(10);
  Rng rng(2);
  const auto picks = PolicySampling(SamplingPolicy::kHighestConfidence,
                                    probs, AllRows(10), 3, rng);
  // Highest max-confidence rows: 9 (0.909...), 0 (0.909 flipped?) — row r
  // max = max(p, 1-p); graded rows near the ends have the largest max.
  ASSERT_EQ(picks.size(), 3u);
  for (size_t p : picks) {
    EXPECT_TRUE(p <= 1 || p >= 8) << "picked middle row " << p;
  }
}

TEST(PolicySamplingTest, LeastConfidencePicksMiddle) {
  const Matrix probs = GradedProbs(11);  // Row 5 is the 0.5/0.5 row.
  Rng rng(3);
  const auto picks = PolicySampling(SamplingPolicy::kLeastConfidence,
                                    probs, AllRows(11), 1, rng);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 5u);
}

TEST(PolicySamplingTest, EntropyPicksUniformRows) {
  Matrix probs(3, 3, 0.0f);
  probs(0, 0) = 1.0f;                                  // Entropy 0.
  probs(1, 0) = probs(1, 1) = probs(1, 2) = 1.0f / 3;  // Max entropy.
  probs(2, 0) = 0.8f;
  probs(2, 1) = 0.2f;
  Rng rng(4);
  const auto picks = PolicySampling(SamplingPolicy::kEntropy, probs,
                                    AllRows(3), 1, rng);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], 1u);
}

TEST(PolicySamplingTest, RespectsPool) {
  const Matrix probs = GradedProbs(10);
  Rng rng(5);
  const std::vector<size_t> pool = {2, 4, 6};
  for (auto policy : {SamplingPolicy::kRandom,
                      SamplingPolicy::kHighestConfidence,
                      SamplingPolicy::kLeastConfidence,
                      SamplingPolicy::kEntropy}) {
    const auto picks = PolicySampling(policy, probs, pool, 2, rng);
    for (size_t p : picks) {
      EXPECT_TRUE(std::find(pool.begin(), pool.end(), p) != pool.end());
    }
  }
}

TEST(PolicySamplingTest, CountClampedToPoolSize) {
  const Matrix probs = GradedProbs(5);
  Rng rng(6);
  const auto picks = PolicySampling(SamplingPolicy::kRandom, probs,
                                    AllRows(5), 50, rng);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(PolicySamplingTest, EmptyPoolOrZeroCount) {
  const Matrix probs = GradedProbs(5);
  Rng rng(7);
  EXPECT_TRUE(
      PolicySampling(SamplingPolicy::kRandom, probs, {}, 3, rng).empty());
  EXPECT_TRUE(PolicySampling(SamplingPolicy::kEntropy, probs, AllRows(5), 0,
                             rng)
                  .empty());
}

}  // namespace
}  // namespace enld
