#include "enld/sample_sets.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/synthetic.h"
#include "nn/trainer.h"

namespace enld {
namespace {

struct TestSetup {
  Dataset data;
  std::unique_ptr<MlpModel> model;
};

TestSetup MakeSetup() {
  SyntheticConfig config;
  config.num_classes = 5;
  config.samples_per_class = 40;
  config.feature_dim = 8;
  config.class_separation = 7.0;
  config.seed = 41;
  TestSetup s;
  s.data = GenerateSynthetic(config);
  Rng rng(42);
  const auto t = TransitionMatrix::PairAsymmetric(5, 0.2);
  ApplyLabelNoise(&s.data, t, rng);
  Rng model_rng(43);
  s.model = std::make_unique<MlpModel>(std::vector<size_t>{8, 16, 5},
                                       model_rng);
  TrainConfig train;
  train.epochs = 8;
  train.seed = 44;
  TrainModel(s.model.get(), s.data, nullptr, train);
  return s;
}

TEST(SampleSetsTest, HighQualityAndAmbiguousPartitionLabeled) {
  TestSetup s = MakeSetup();
  const auto hq = HighQualityPositions(s.model.get(), s.data);
  const auto amb = AmbiguousPositions(s.model.get(), s.data);
  EXPECT_EQ(hq.size() + amb.size(), s.data.size());
  std::vector<bool> seen(s.data.size(), false);
  for (size_t i : hq) seen[i] = true;
  for (size_t i : amb) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool b) { return b; }));
}

TEST(SampleSetsTest, DefinitionsMatchModelPredictions) {
  TestSetup s = MakeSetup();
  const auto predicted = s.model->Predict(s.data.features);
  for (size_t i : HighQualityPositions(s.model.get(), s.data)) {
    EXPECT_EQ(predicted[i], s.data.observed_labels[i]);
  }
  for (size_t i : AmbiguousPositions(s.model.get(), s.data)) {
    EXPECT_NE(predicted[i], s.data.observed_labels[i]);
  }
}

TEST(SampleSetsTest, MissingLabelsInNeitherSet) {
  TestSetup s = MakeSetup();
  Rng rng(45);
  MaskMissingLabels(&s.data, 0.3, rng);
  const auto hq = HighQualityPositions(s.model.get(), s.data);
  const auto amb = AmbiguousPositions(s.model.get(), s.data);
  const size_t missing = s.data.MissingLabelIndices().size();
  EXPECT_EQ(hq.size() + amb.size() + missing, s.data.size());
  for (size_t i : hq) {
    EXPECT_NE(s.data.observed_labels[i], kMissingLabel);
  }
}

TEST(SampleSetsTest, EmptyDataset) {
  TestSetup s = MakeSetup();
  Dataset empty;
  EXPECT_TRUE(HighQualityPositions(s.model.get(), empty).empty());
  EXPECT_TRUE(AmbiguousPositions(s.model.get(), empty).empty());
}

TEST(ConfidenceFilterTest, KeepsAboveClassMean) {
  // Handcrafted probabilities: class 0 predictions with confidences
  // 0.9, 0.5, 0.7 -> mean 0.7 -> keep the 0.9 and 0.7 entries.
  Matrix probs(3, 2, 0.0f);
  probs(0, 0) = 0.9f;
  probs(1, 0) = 0.5f;
  probs(2, 0) = 0.7f;
  const std::vector<int> predicted = {0, 0, 0};
  const auto kept =
      FilterHighQualityByConfidence(probs, predicted, {0, 1, 2});
  EXPECT_EQ(kept, (std::vector<size_t>{0, 2}));
}

TEST(ConfidenceFilterTest, PerClassThresholds) {
  // Two predicted classes with different confidence scales; the filter
  // must threshold per class, not globally.
  Matrix probs(4, 2, 0.0f);
  probs(0, 0) = 0.9f;   // class 0, above its mean (0.8).
  probs(1, 0) = 0.7f;   // class 0, below.
  probs(2, 1) = 0.3f;   // class 1, above its mean (0.25).
  probs(3, 1) = 0.2f;   // class 1, below.
  const std::vector<int> predicted = {0, 0, 1, 1};
  const auto kept =
      FilterHighQualityByConfidence(probs, predicted, {0, 1, 2, 3});
  EXPECT_EQ(kept, (std::vector<size_t>{0, 2}));
}

TEST(ConfidenceFilterTest, StrictnessShrinksSelection) {
  TestSetup s = MakeSetup();
  Matrix logits;
  Matrix features;
  s.model->Forward(s.data.features, &logits, &features);
  Matrix probs;
  SoftmaxRows(logits, &probs);
  std::vector<int> predicted(s.data.size());
  for (size_t r = 0; r < s.data.size(); ++r) {
    predicted[r] = static_cast<int>(ArgMaxRow(logits, r));
  }
  const auto hq = HighQualityPositions(s.model.get(), s.data);
  const auto relaxed =
      FilterHighQualityByConfidence(probs, predicted, hq, 1.0);
  const auto strict =
      FilterHighQualityByConfidence(probs, predicted, hq, 1.5);
  EXPECT_LE(strict.size(), relaxed.size());
  EXPECT_LE(relaxed.size(), hq.size());
  EXPECT_FALSE(relaxed.empty());
}

TEST(ConfidenceFilterTest, EmptyInput) {
  Matrix probs(0, 2);
  EXPECT_TRUE(FilterHighQualityByConfidence(probs, {}, {}).empty());
}

TEST(LabelMaskTest, BuildsMask) {
  const auto mask = LabelMask({1, 3}, 5);
  EXPECT_EQ(mask, (std::vector<bool>{false, true, false, true, false}));
}

TEST(RestrictToLabelSetTest, FiltersByObservedLabel) {
  Matrix features(4, 1);
  Dataset data =
      MakeDataset(std::move(features), {0, 1, 2, kMissingLabel},
                  {0, 1, 2, 0}, 3);
  const auto mask = LabelMask({0, 2}, 3);
  const auto kept = RestrictToLabelSet(data, {0, 1, 2, 3}, mask);
  EXPECT_EQ(kept, (std::vector<size_t>{0, 2}));
}

}  // namespace
}  // namespace enld
