#include "enld/framework.h"

#include <gtest/gtest.h>

#include "baselines/default_detector.h"
#include "eval/metrics.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

EnldConfig FastEnldConfig() {
  EnldConfig config;
  config.general = TinyGeneralConfig();
  config.iterations = 3;
  config.steps_per_iteration = 3;
  return config;
}

class FrameworkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* FrameworkTest::workload_ = nullptr;

TEST_F(FrameworkTest, SetupEstimatesConditional) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  const auto& conditional = enld.conditional();
  ASSERT_EQ(conditional.size(),
            static_cast<size_t>(workload_->inventory.num_classes));
  double diag = 0.0;
  for (size_t i = 0; i < conditional.size(); ++i) {
    double sum = 0.0;
    for (double v : conditional[i]) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    diag += conditional[i][i];
  }
  // Diagonal dominance at 20% noise.
  EXPECT_GT(diag / conditional.size(), 0.5);
}

TEST_F(FrameworkTest, SetupSplitsInventoryInHalves) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  EXPECT_EQ(enld.train_set().size() + enld.candidate_set().size(),
            workload_->inventory.size());
  EXPECT_EQ(enld.train_set().size(), workload_->inventory.size() / 2);
  EXPECT_NE(enld.general_model(), nullptr);
}

TEST_F(FrameworkTest, DetectReturnsValidPartition) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  const DetectionResult result = enld.Detect(d);
  EXPECT_EQ(result.clean_indices.size() + result.noisy_indices.size(),
            d.size());
}

TEST_F(FrameworkTest, NameFollowsPolicy) {
  EnldConfig config = FastEnldConfig();
  EXPECT_EQ(EnldFramework(config).name(), "enld");
  EXPECT_EQ(EnldFramework(config).display_name(), "ENLD");
  config.policy = SamplingPolicy::kPseudo;
  EXPECT_EQ(EnldFramework(config).name(), "enld-pseudo");
  EXPECT_EQ(EnldFramework(config).display_name(), "Pseudo-ENLD");
}

TEST_F(FrameworkTest, OutperformsDefaultBaseline) {
  EnldFramework enld(FastEnldConfig());
  DefaultDetector baseline(TinyGeneralConfig());
  enld.Setup(workload_->inventory);
  baseline.Setup(workload_->inventory);

  double enld_f1 = 0.0;
  double default_f1 = 0.0;
  for (const Dataset& d : workload_->incremental) {
    enld_f1 += EvaluateDetection(d, enld.Detect(d).noisy_indices).f1;
    default_f1 +=
        EvaluateDetection(d, baseline.Detect(d).noisy_indices).f1;
  }
  EXPECT_GT(enld_f1, default_f1);
}

TEST_F(FrameworkTest, DetectAccumulatesCleanInventorySelection) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  EXPECT_EQ(enld.selected_clean_count(), 0u);
  enld.Detect(workload_->incremental[0]);
  const size_t after_one = enld.selected_clean_count();
  EXPECT_GT(after_one, 0u);
  enld.Detect(workload_->incremental[1]);
  EXPECT_GE(enld.selected_clean_count(), after_one);
  // Positions are inside the candidate set.
  for (size_t pos : enld.selected_clean_positions()) {
    EXPECT_LT(pos, enld.candidate_set().size());
  }
}

TEST_F(FrameworkTest, UpdateModelRequiresSetup) {
  EnldFramework enld(FastEnldConfig());
  const Status status = enld.UpdateModel();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(FrameworkTest, UpdateModelRequiresSelectedSamples) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  const Status status = enld.UpdateModel();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(FrameworkTest, UpdateModelSwapsSetsAndResets) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  enld.Detect(workload_->incremental[0]);
  ASSERT_GT(enld.selected_clean_count(), 0u);

  const std::vector<uint64_t> old_train_ids = enld.train_set().ids;
  const std::vector<uint64_t> old_candidate_ids = enld.candidate_set().ids;
  ASSERT_TRUE(enld.UpdateModel().ok());

  // Algorithm 4: I_t and I_c swap roles.
  EXPECT_EQ(enld.train_set().ids, old_candidate_ids);
  EXPECT_EQ(enld.candidate_set().ids, old_train_ids);
  // S_c resets against the new candidate set.
  EXPECT_EQ(enld.selected_clean_count(), 0u);
  // Detection still works after the update.
  const DetectionResult result = enld.Detect(workload_->incremental[2]);
  EXPECT_EQ(result.clean_indices.size() + result.noisy_indices.size(),
            workload_->incremental[2].size());
}

TEST_F(FrameworkTest, UpdatedModelStillDetects) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  for (const Dataset& d : workload_->incremental) enld.Detect(d);
  ASSERT_TRUE(enld.UpdateModel().ok());
  const Dataset& d = workload_->incremental[0];
  const auto metrics =
      EvaluateDetection(d, enld.Detect(d).noisy_indices);
  EXPECT_GT(metrics.f1, 0.3);
}

TEST_F(FrameworkTest, DeterministicAcrossInstances) {
  auto run = [this] {
    EnldFramework enld(FastEnldConfig());
    enld.Setup(workload_->inventory);
    return enld.Detect(workload_->incremental[0]).noisy_indices;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace enld
