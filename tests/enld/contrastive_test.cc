#include "enld/contrastive.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace enld {
namespace {

std::vector<std::vector<double>> UniformPairConditional(int classes,
                                                        double offdiag) {
  std::vector<std::vector<double>> cond(
      classes, std::vector<double>(classes, 0.0));
  for (int i = 0; i < classes; ++i) {
    cond[i][i] = 1.0 - offdiag;
    cond[i][(i + classes - 1) % classes] = offdiag;
  }
  return cond;
}

TEST(RandomLabelTest, RespectsAvailabilityMask) {
  const auto cond = UniformPairConditional(4, 0.3);
  Rng rng(1);
  std::vector<bool> available = {true, false, true, true};
  for (int trial = 0; trial < 200; ++trial) {
    const int label = RandomLabel(2, cond, available, rng);
    ASSERT_GE(label, 0);
    EXPECT_TRUE(available[label]);
  }
}

TEST(RandomLabelTest, MatchesConditionalFrequencies) {
  const auto cond = UniformPairConditional(4, 0.3);
  Rng rng(2);
  std::vector<bool> available(4, true);
  std::map<int, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[RandomLabel(2, cond, available, rng)];
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[3], 0);
}

TEST(RandomLabelTest, FallsBackToObservedWhenNoMass) {
  // All conditional mass is on unavailable classes; observed is available.
  std::vector<std::vector<double>> cond = {{0.0, 1.0}, {1.0, 0.0}};
  Rng rng(3);
  const std::vector<bool> available = {true, false};
  EXPECT_EQ(RandomLabel(0, cond, available, rng), 0);
}

TEST(RandomLabelTest, FallsBackToUniformAvailable) {
  // No mass on available classes and observed unavailable.
  std::vector<std::vector<double>> cond = {
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  Rng rng(4);
  const std::vector<bool> available = {false, false, true};
  EXPECT_EQ(RandomLabel(0, cond, available, rng), 2);
}

TEST(RandomLabelTest, NothingAvailableReturnsMinusOne) {
  std::vector<std::vector<double>> cond = {{1.0, 0.0}, {0.0, 1.0}};
  Rng rng(5);
  EXPECT_EQ(RandomLabel(0, cond, {false, false}, rng), -1);
}

/// Builds a deterministic two-class candidate layout on a line:
/// class 0 candidates at x = 0, 1, 2, ...; class 1 at x = 100, 101, ...
struct LineFixture {
  Dataset candidate;
  Matrix features;  // Same as candidate.features (identity feature map).
  ClassKnnIndex index;

  static LineFixture Make(size_t per_class) {
    Matrix features(per_class * 2, 1);
    std::vector<int> labels(per_class * 2);
    for (size_t i = 0; i < per_class; ++i) {
      features(i, 0) = static_cast<float>(i);
      labels[i] = 0;
      features(per_class + i, 0) = 100.0f + static_cast<float>(i);
      labels[per_class + i] = 1;
    }
    Dataset candidate = MakeDataset(features, labels, {}, 2);
    // MakeDataset copies by value; rebuild features from the dataset to
    // keep them aligned after the internal shuffle-free construction.
    std::vector<size_t> all(candidate.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    ClassKnnIndex index(candidate.features, candidate.observed_labels, all,
                        2);
    return LineFixture{candidate, candidate.features, std::move(index)};
  }
};

TEST(ContrastiveSamplingTest, PicksNearestOfDrawnClass) {
  LineFixture fixture = LineFixture::Make(10);
  // One ambiguous sample at x = 3.4 observed as class 0; conditional is
  // identity so the drawn class is always 0.
  Matrix d_features(1, 1);
  d_features(0, 0) = 3.4f;
  Dataset incremental = MakeDataset(d_features, {0}, {}, 2);
  const auto cond = UniformPairConditional(2, 0.0);
  Rng rng(6);
  const auto picks = ContrastiveSampling(
      incremental, {0}, incremental.features, fixture.index, cond,
      /*k=*/3, /*use_probability_label=*/true, rng);
  ASSERT_EQ(picks.size(), 3u);
  // Nearest class-0 candidates to 3.4 are rows 3, 4, 2.
  std::vector<size_t> sorted = picks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<size_t>{2, 3, 4}));
}

TEST(ContrastiveSamplingTest, BudgetIsKPerAmbiguousSample) {
  LineFixture fixture = LineFixture::Make(10);
  Matrix d_features(4, 1);
  for (size_t i = 0; i < 4; ++i) d_features(i, 0) = static_cast<float>(i);
  Dataset incremental = MakeDataset(d_features, {0, 0, 1, 1}, {}, 2);
  const auto cond = UniformPairConditional(2, 0.0);
  Rng rng(7);
  const auto picks = ContrastiveSampling(
      incremental, {0, 1, 2, 3}, incremental.features, fixture.index, cond,
      2, true, rng);
  EXPECT_EQ(picks.size(), 8u);
}

TEST(ContrastiveSamplingTest, DuplicatesActAsWeights) {
  // Two ambiguous samples at the same location must fetch the same
  // nearest candidates -> duplicates in the multiset.
  LineFixture fixture = LineFixture::Make(10);
  Matrix d_features(2, 1);
  d_features(0, 0) = 5.0f;
  d_features(1, 0) = 5.0f;
  Dataset incremental = MakeDataset(d_features, {0, 0}, {}, 2);
  const auto cond = UniformPairConditional(2, 0.0);
  Rng rng(8);
  const auto picks = ContrastiveSampling(
      incremental, {0, 1}, incremental.features, fixture.index, cond, 2,
      true, rng);
  ASSERT_EQ(picks.size(), 4u);
  std::map<size_t, int> counts;
  for (size_t p : picks) ++counts[p];
  int max_count = 0;
  for (const auto& [pos, count] : counts) max_count = std::max(max_count,
                                                               count);
  EXPECT_EQ(max_count, 2);
}

TEST(ContrastiveSamplingTest, Enld4QueriesObservedClass) {
  LineFixture fixture = LineFixture::Make(10);
  Matrix d_features(1, 1);
  d_features(0, 0) = 102.0f;  // Sits inside class 1's region.
  Dataset incremental = MakeDataset(d_features, {0}, {}, 2);
  // Conditional puts all mass on class 1, but ENLD-4 ignores it.
  std::vector<std::vector<double>> cond = {{0.0, 1.0}, {0.0, 1.0}};
  Rng rng(9);
  const auto picks = ContrastiveSampling(
      incremental, {0}, incremental.features, fixture.index, cond, 2,
      /*use_probability_label=*/false, rng);
  ASSERT_EQ(picks.size(), 2u);
  for (size_t p : picks) {
    EXPECT_EQ(fixture.candidate.observed_labels[p], 0);
  }
}

TEST(ContrastiveSamplingTest, LabelDistributionTracksConditional) {
  // Corollary 2: with many draws, the class distribution of the picks
  // matches the conditional mixture.
  LineFixture fixture = LineFixture::Make(50);
  const size_t n = 400;
  Matrix d_features(n, 1);
  std::vector<int> labels(n, 0);
  for (size_t i = 0; i < n; ++i) d_features(i, 0) = 50.0f;  // Between both.
  Dataset incremental = MakeDataset(d_features, labels, {}, 2);
  std::vector<size_t> ambiguous(n);
  for (size_t i = 0; i < n; ++i) ambiguous[i] = i;
  std::vector<std::vector<double>> cond = {{0.6, 0.4}, {0.0, 1.0}};
  Rng rng(10);
  const auto picks = ContrastiveSampling(
      incremental, ambiguous, incremental.features, fixture.index, cond, 1,
      true, rng);
  ASSERT_EQ(picks.size(), n);
  size_t class1 = 0;
  for (size_t p : picks) {
    if (fixture.candidate.observed_labels[p] == 1) ++class1;
  }
  EXPECT_NEAR(static_cast<double>(class1) / n, 0.4, 0.07);
}

TEST(ContrastiveSamplingTest, EmptyAmbiguousSetYieldsEmpty) {
  LineFixture fixture = LineFixture::Make(5);
  Matrix d_features(1, 1);
  Dataset incremental = MakeDataset(d_features, {0}, {}, 2);
  const auto cond = UniformPairConditional(2, 0.1);
  Rng rng(11);
  EXPECT_TRUE(ContrastiveSampling(incremental, {}, incremental.features,
                                  fixture.index, cond, 3, true, rng)
                  .empty());
}

}  // namespace
}  // namespace enld
