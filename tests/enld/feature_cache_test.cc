#include "enld/feature_cache.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/telemetry/metrics.h"
#include "enld/framework.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

EnldConfig FastEnldConfig() {
  EnldConfig config;
  config.general = TinyGeneralConfig();
  config.iterations = 3;
  config.steps_per_iteration = 3;
  return config;
}

void ExpectSameResult(const DetectionResult& a, const DetectionResult& b) {
  EXPECT_EQ(a.clean_indices, b.clean_indices);
  EXPECT_EQ(a.noisy_indices, b.noisy_indices);
  EXPECT_EQ(a.per_iteration_clean, b.per_iteration_clean);
  EXPECT_EQ(a.per_iteration_ambiguous, b.per_iteration_ambiguous);
  EXPECT_EQ(a.recovered_labels, b.recovered_labels);
}

void ExpectSameMatrixBits(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  if (a.rows() * a.cols() == 0) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        a.rows() * a.cols() * sizeof(float)),
            0);
}

class FeatureCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* FeatureCacheTest::workload_ = nullptr;

TEST(FeatureCacheUnitTest, ViewKeyedOnVersion) {
  FeatureCache cache;
  const uint64_t v = cache.model_version();
  EXPECT_EQ(cache.FindView(v), nullptr);
  EXPECT_EQ(cache.stats().view_misses, 1u);

  ModelView view;
  view.predicted = {1, 2, 3};
  const ModelView* stored = cache.StoreView(v, std::move(view));
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.FindView(v), stored);
  EXPECT_EQ(cache.stats().view_hits, 1u);

  cache.BumpModelVersion();
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_NE(cache.model_version(), v);
  EXPECT_EQ(cache.FindView(cache.model_version()), nullptr);
  // A second bump with nothing cached is not an invalidation.
  cache.BumpModelVersion();
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(FeatureCacheUnitTest, IndexKeyedOnVersionAndPool) {
  FeatureCache cache;
  const uint64_t v = cache.model_version();
  const uint64_t key_a = FingerprintPositions({0, 1, 2});
  const uint64_t key_b = FingerprintPositions({0, 1, 3});
  EXPECT_NE(key_a, key_b);
  EXPECT_EQ(cache.FindIndex(v, key_a), nullptr);

  Matrix features(4, 2, 1.0f);
  auto index = std::make_shared<const ClassKnnIndex>(
      features, std::vector<int>{0, 0, 0, 0}, std::vector<size_t>{0, 1, 2},
      1);
  cache.StoreIndex(v, key_a, index);
  EXPECT_EQ(cache.FindIndex(v, key_a), index);
  EXPECT_EQ(cache.FindIndex(v, key_b), nullptr);      // Other pool.
  EXPECT_EQ(cache.FindIndex(v + 1, key_a), nullptr);  // Other version.
  EXPECT_EQ(cache.stats().index_hits, 1u);
  EXPECT_EQ(cache.stats().index_misses, 3u);

  cache.BumpModelVersion();
  EXPECT_EQ(cache.FindIndex(cache.model_version(), key_a), nullptr);
}

/// A replayed request stream visits pools cyclically (a, b, c, a, b, c).
/// A single-slot cache would thrash to 0 hits on that pattern; the LRU
/// set must hit every pool on the second pass.
TEST(FeatureCacheUnitTest, IndexLruSurvivesCyclicReplay) {
  FeatureCache cache;
  const uint64_t v = cache.model_version();
  Matrix features(4, 2, 1.0f);
  auto make_index = [&] {
    return std::make_shared<const ClassKnnIndex>(
        features, std::vector<int>{0, 0, 0, 0}, std::vector<size_t>{0, 1, 2},
        1);
  };
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 3; ++i) {
    keys.push_back(FingerprintPositions({i, i + 1}));
  }
  for (uint64_t key : keys) cache.StoreIndex(v, key, make_index());
  for (uint64_t key : keys) {
    EXPECT_NE(cache.FindIndex(v, key), nullptr) << key;
  }
  EXPECT_EQ(cache.stats().index_hits, 3u);

  // Filling past capacity evicts the least-recently-used entries first.
  for (size_t i = 0; i < FeatureCache::kMaxIndexEntries; ++i) {
    cache.StoreIndex(v, FingerprintPositions({100 + i}), make_index());
  }
  EXPECT_EQ(cache.FindIndex(v, keys[0]), nullptr);
  EXPECT_NE(
      cache.FindIndex(
          v, FingerprintPositions({100 + FeatureCache::kMaxIndexEntries - 1})),
      nullptr);
}

TEST_F(FeatureCacheTest, SelectViewRowsMatchesDirectCompute) {
  const Dataset& full_set = workload_->incremental[0];
  Rng rng(11);
  MlpModel model({full_set.dim(), 24, static_cast<size_t>(
                                          full_set.num_classes)},
                 rng);
  const ModelView full = ComputeModelView(&model, full_set);
  const std::vector<size_t> rows = {0, 2, 5, 7, full_set.size() - 1};
  const ModelView selected = SelectViewRows(full, rows);
  const ModelView direct = ComputeModelView(&model, full_set.Subset(rows));
  // The bit-identity FeatureCache depends on: selecting rows of the full
  // view equals forwarding the subset directly.
  ExpectSameMatrixBits(selected.probs, direct.probs);
  ExpectSameMatrixBits(selected.features, direct.features);
  EXPECT_EQ(selected.predicted, direct.predicted);
}

TEST_F(FeatureCacheTest, CachedDetectionIsByteIdenticalAndBuildsFewerTrees) {
  EnldConfig cached_config = FastEnldConfig();
  EnldConfig uncached_config = cached_config;
  uncached_config.use_feature_cache = false;

  auto* trees_built =
      telemetry::MetricsRegistry::Global().GetCounter("knn/trees_built");

  EnldFramework cached(cached_config);
  EnldFramework uncached(uncached_config);
  ASSERT_TRUE(cached.feature_cache_enabled());
  ASSERT_FALSE(uncached.feature_cache_enabled());
  cached.Setup(workload_->inventory);
  uncached.Setup(workload_->inventory);

  // Detect the same dataset twice per framework: the second request reuses
  // the cached view and index (same model version, same I' pool).
  const Dataset& d = workload_->incremental[0];
  const uint64_t uncached_before = trees_built->Value();
  const DetectionResult u1 = uncached.Detect(d);
  const DetectionResult u2 = uncached.Detect(d);
  const uint64_t uncached_trees = trees_built->Value() - uncached_before;

  const uint64_t cached_before = trees_built->Value();
  const DetectionResult c1 = cached.Detect(d);
  const DetectionResult c2 = cached.Detect(d);
  const uint64_t cached_trees = trees_built->Value() - cached_before;

  ExpectSameResult(c1, u1);
  ExpectSameResult(c2, u2);
  EXPECT_LT(cached_trees, uncached_trees);
  const FeatureCache::Stats& stats = cached.feature_cache().stats();
  EXPECT_GE(stats.view_hits, 1u);
  EXPECT_GE(stats.index_hits, 1u);
}

TEST_F(FeatureCacheTest, TrainerUpdatesInvalidate) {
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload_->inventory);
  const uint64_t after_setup = enld.feature_cache().model_version();
  (void)enld.Detect(workload_->incremental[0]);
  EXPECT_EQ(enld.feature_cache().model_version(), after_setup);

  ASSERT_TRUE(enld.UpdateModel().ok());
  EXPECT_GT(enld.feature_cache().model_version(), after_setup);
  EXPECT_GE(enld.feature_cache().stats().invalidations, 1u);

  // Restore also lands on a fresh version: nothing cached from the
  // pre-restore lineage may be served.
  EnldFrameworkState state = enld.CaptureState();
  const uint64_t before_restore = enld.feature_cache().model_version();
  ASSERT_TRUE(enld.RestoreState(std::move(state)).ok());
  EXPECT_GT(enld.feature_cache().model_version(), before_restore);

  // Explicit ops invalidation.
  const uint64_t before_manual = enld.feature_cache().model_version();
  enld.InvalidateFeatureCache();
  EXPECT_GT(enld.feature_cache().model_version(), before_manual);
}

TEST(FeatureCacheEnvTest, EnvVarDisablesCache) {
  ASSERT_EQ(setenv("ENLD_FEATURE_CACHE", "0", 1), 0);
  EnldFramework disabled(FastEnldConfig());
  EXPECT_FALSE(disabled.feature_cache_enabled());
  ASSERT_EQ(setenv("ENLD_FEATURE_CACHE", "1", 1), 0);
  EnldFramework enabled(FastEnldConfig());
  EXPECT_TRUE(enabled.feature_cache_enabled());
  ASSERT_EQ(unsetenv("ENLD_FEATURE_CACHE"), 0);
}

}  // namespace
}  // namespace enld
