#include "enld/platform.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/faults.h"
#include "common/telemetry/metrics.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

class PlatformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* PlatformTest::workload_ = nullptr;

TEST_F(PlatformTest, ProcessBeforeInitializeFails) {
  DataPlatform platform(FastPlatformConfig());
  EXPECT_FALSE(platform.initialized());
  const auto result = platform.Process(workload_->incremental[0]);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlatformTest, InitializeValidatesInventory) {
  DataPlatform platform(FastPlatformConfig());
  Dataset empty;
  EXPECT_EQ(platform.Initialize(empty).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(platform.Initialize(workload_->inventory).ok());
  EXPECT_TRUE(platform.initialized());
  // Double initialization is rejected.
  EXPECT_EQ(platform.Initialize(workload_->inventory).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlatformTest, ProcessValidatesRequest) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  EXPECT_EQ(platform.Process(Dataset()).status().code(),
            StatusCode::kInvalidArgument);

  // Wrong feature dimension.
  Dataset wrong_dim = workload_->incremental[0];
  wrong_dim.features = Matrix(wrong_dim.size(), wrong_dim.dim() + 1);
  EXPECT_EQ(platform.Process(wrong_dim).status().code(),
            StatusCode::kInvalidArgument);

  // Wrong class count.
  Dataset wrong_classes = workload_->incremental[0];
  wrong_classes.num_classes += 5;
  EXPECT_EQ(platform.Process(wrong_classes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlatformTest, ProcessServesRequestsAndTracksStats) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  size_t total = 0;
  size_t flagged = 0;
  for (const Dataset& d : workload_->incremental) {
    const auto result = platform.Process(d);
    ASSERT_TRUE(result.ok());
    total += d.size();
    flagged += result->noisy_indices.size();
  }
  const PlatformStats& stats = platform.stats();
  EXPECT_EQ(stats.requests, workload_->incremental.size());
  EXPECT_EQ(stats.samples_processed, total);
  EXPECT_EQ(stats.samples_flagged_noisy, flagged);
  EXPECT_GT(stats.total_process_seconds, 0.0);
  EXPECT_EQ(stats.model_updates, 0u);
}

TEST_F(PlatformTest, AutoUpdatePolicyFiresWhenEnoughSelected) {
  DataPlatformConfig config = FastPlatformConfig();
  config.update_every = 2;
  config.min_update_samples = 1;  // Fire as soon as anything is selected.
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_GE(platform.stats().model_updates, 1u);
}

TEST_F(PlatformTest, AutoUpdateSkippedBelowMinimum) {
  DataPlatformConfig config = FastPlatformConfig();
  config.update_every = 1;
  config.min_update_samples = 1'000'000;  // Never enough.
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_EQ(platform.stats().model_updates, 0u);
}

TEST_F(PlatformTest, ManualUpdateRespectsMinimum) {
  DataPlatformConfig config = FastPlatformConfig();
  config.min_update_samples = 1'000'000;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  ASSERT_TRUE(platform.Process(workload_->incremental[0]).ok());
  EXPECT_EQ(platform.Update().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlatformTest, ManualUpdateSucceedsWithSelection) {
  DataPlatformConfig config = FastPlatformConfig();
  config.min_update_samples = 1;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_TRUE(platform.Update().ok());
  EXPECT_EQ(platform.stats().model_updates, 1u);
  // Platform keeps serving after an update.
  EXPECT_TRUE(platform.Process(workload_->incremental[0]).ok());
}

/// The latency fault sites sleep at least this long per fire
/// (kInjectedStallSeconds in platform.cc).
constexpr double kMinStall = 0.1;

/// Budget used by the deadline tests. A latency fire charges the full
/// budget to the deadline clock, so any value works for the overrun; it is
/// set generously above the tiny workload's real processing time so the
/// legitimate requests around the slow one never flake — even under
/// TSan/ASan slowdown.
constexpr double kBudget = 30.0;

class PlatformFaultTest : public PlatformTest {
 protected:
  void SetUp() override { faults::Clear(); }
  void TearDown() override { faults::Clear(); }
};

TEST_F(PlatformFaultTest, ProcessChargesScreeningTimeToStats) {
  // Regression: the Process stopwatch used to start *after* admission
  // screening, so screening (and any stall inside it) was invisible in
  // total_process_seconds. The stall fires before admission; with timing
  // measured from request entry it must show up for unscreened, screened
  // and rejected requests alike.
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  faults::ArmSite("platform/slow_admission", 1.0, /*max_fires=*/3,
                  /*burst_limit=*/0);

  // Unscreened request: every sample admitted.
  double before = platform.stats().total_process_seconds;
  ASSERT_TRUE(platform.Process(workload_->incremental[0]).ok());
  EXPECT_GE(platform.stats().total_process_seconds - before, kMinStall);

  // Screened request: one sample quarantined, the remainder processed.
  Dataset screened = workload_->incremental[1];
  screened.features.Row(0)[0] = std::numeric_limits<float>::quiet_NaN();
  before = platform.stats().total_process_seconds;
  ASSERT_TRUE(platform.Process(screened).ok());
  EXPECT_EQ(platform.stats().samples_quarantined, 1u);
  EXPECT_GE(platform.stats().total_process_seconds - before, kMinStall);

  // Rejected request: every sample invalid — the request fails, but the
  // time it consumed is still charged.
  Dataset rejected = workload_->incremental[2];
  for (size_t r = 0; r < rejected.size(); ++r) {
    rejected.features.Row(r)[0] = std::numeric_limits<float>::quiet_NaN();
  }
  before = platform.stats().total_process_seconds;
  EXPECT_EQ(platform.Process(rejected).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_GE(platform.stats().total_process_seconds - before, kMinStall);
}

TEST_F(PlatformFaultTest, DeadlineAtAdmissionLeavesDetectionStreamUntouched) {
  DataPlatformConfig config = FastPlatformConfig();
  config.request_deadline_seconds = kBudget;

  DataPlatform slowed(config);
  ASSERT_TRUE(slowed.Initialize(workload_->inventory).ok());
  DataPlatform reference(config);
  ASSERT_TRUE(reference.Initialize(workload_->inventory).ok());

  telemetry::Counter* exceeded =
      telemetry::MetricsRegistry::Global().GetCounter(
          "platform/deadline_exceeded");
  const uint64_t exceeded_before = exceeded->Value();

  // Only the first request is slow; the fire charges the whole budget to
  // the deadline clock, guaranteeing the overrun.
  faults::ArmSite("platform/slow_admission", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  const auto dropped = slowed.Process(workload_->incremental[0]);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(exceeded->Value(), exceeded_before + 1);

  const PlatformStats& stats = slowed.stats();
  EXPECT_EQ(stats.requests, 0u);  // the dropped request served nothing
  EXPECT_EQ(stats.requests_deadline_exceeded, 1u);
  ASSERT_EQ(slowed.deadline_audit().size(), 1u);
  EXPECT_EQ(slowed.deadline_audit()[0].stage, "admission");
  EXPECT_EQ(slowed.deadline_audit()[0].request, 1u);
  EXPECT_GT(slowed.deadline_audit()[0].elapsed_seconds, kBudget);
  EXPECT_DOUBLE_EQ(slowed.deadline_audit()[0].budget_seconds, kBudget);

  // An admission-stage drop never touches the framework (RNG included):
  // the next request detects byte-identically to a platform that never saw
  // the dropped one.
  const auto after_drop = slowed.Process(workload_->incremental[1]);
  const auto fresh = reference.Process(workload_->incremental[1]);
  ASSERT_TRUE(after_drop.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(after_drop->noisy_indices, fresh->noisy_indices);
  EXPECT_EQ(after_drop->clean_indices, fresh->clean_indices);
}

TEST_F(PlatformFaultTest, DeadlineAfterDetectionDiscardsResult) {
  DataPlatformConfig config = FastPlatformConfig();
  config.request_deadline_seconds = kBudget;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  const auto dropped = platform.Process(workload_->incremental[0]);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kDeadlineExceeded);

  // Detection ran but its result was discarded: no serving counters moved.
  EXPECT_EQ(platform.stats().requests, 0u);
  EXPECT_EQ(platform.stats().samples_processed, 0u);
  EXPECT_EQ(platform.stats().requests_deadline_exceeded, 1u);
  ASSERT_EQ(platform.deadline_audit().size(), 1u);
  EXPECT_EQ(platform.deadline_audit()[0].stage, "detection");

  // The stream behind the slow request keeps flowing.
  EXPECT_TRUE(platform.Process(workload_->incremental[1]).ok());
  EXPECT_EQ(platform.stats().requests, 1u);
}

TEST_F(PlatformFaultTest, DeadlineOverrideReplacesConfigBudgetPerRequest) {
  // The config has no budget; a positive per-request override (the wire
  // deadline header path, docs/SERVING.md §4) imposes one anyway.
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  const auto bounded =
      platform.Process(workload_->incremental[0], /*deadline=*/kBudget);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(platform.deadline_audit().size(), 1u);
  EXPECT_DOUBLE_EQ(platform.deadline_audit()[0].budget_seconds, kBudget);
  // The default (negative) override keeps the config's no-deadline policy.
  EXPECT_TRUE(platform.Process(workload_->incremental[1]).ok());
}

TEST_F(PlatformFaultTest, ZeroDeadlineOverrideDisablesConfigBudget) {
  // The config budget would fail the stalled request; an explicit 0
  // override disables the deadline for this request only.
  DataPlatformConfig config = FastPlatformConfig();
  config.request_deadline_seconds = kBudget;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/2,
                  /*burst_limit=*/0);
  EXPECT_TRUE(
      platform.Process(workload_->incremental[0], /*deadline=*/0.0).ok());
  // The next stalled request runs under the config budget again.
  EXPECT_EQ(platform.Process(workload_->incremental[1]).status().code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace enld
