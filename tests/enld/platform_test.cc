#include "enld/platform.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

class PlatformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* PlatformTest::workload_ = nullptr;

TEST_F(PlatformTest, ProcessBeforeInitializeFails) {
  DataPlatform platform(FastPlatformConfig());
  EXPECT_FALSE(platform.initialized());
  const auto result = platform.Process(workload_->incremental[0]);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlatformTest, InitializeValidatesInventory) {
  DataPlatform platform(FastPlatformConfig());
  Dataset empty;
  EXPECT_EQ(platform.Initialize(empty).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(platform.Initialize(workload_->inventory).ok());
  EXPECT_TRUE(platform.initialized());
  // Double initialization is rejected.
  EXPECT_EQ(platform.Initialize(workload_->inventory).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlatformTest, ProcessValidatesRequest) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());

  EXPECT_EQ(platform.Process(Dataset()).status().code(),
            StatusCode::kInvalidArgument);

  // Wrong feature dimension.
  Dataset wrong_dim = workload_->incremental[0];
  wrong_dim.features = Matrix(wrong_dim.size(), wrong_dim.dim() + 1);
  EXPECT_EQ(platform.Process(wrong_dim).status().code(),
            StatusCode::kInvalidArgument);

  // Wrong class count.
  Dataset wrong_classes = workload_->incremental[0];
  wrong_classes.num_classes += 5;
  EXPECT_EQ(platform.Process(wrong_classes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlatformTest, ProcessServesRequestsAndTracksStats) {
  DataPlatform platform(FastPlatformConfig());
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  size_t total = 0;
  size_t flagged = 0;
  for (const Dataset& d : workload_->incremental) {
    const auto result = platform.Process(d);
    ASSERT_TRUE(result.ok());
    total += d.size();
    flagged += result->noisy_indices.size();
  }
  const PlatformStats& stats = platform.stats();
  EXPECT_EQ(stats.requests, workload_->incremental.size());
  EXPECT_EQ(stats.samples_processed, total);
  EXPECT_EQ(stats.samples_flagged_noisy, flagged);
  EXPECT_GT(stats.total_process_seconds, 0.0);
  EXPECT_EQ(stats.model_updates, 0u);
}

TEST_F(PlatformTest, AutoUpdatePolicyFiresWhenEnoughSelected) {
  DataPlatformConfig config = FastPlatformConfig();
  config.update_every = 2;
  config.min_update_samples = 1;  // Fire as soon as anything is selected.
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_GE(platform.stats().model_updates, 1u);
}

TEST_F(PlatformTest, AutoUpdateSkippedBelowMinimum) {
  DataPlatformConfig config = FastPlatformConfig();
  config.update_every = 1;
  config.min_update_samples = 1'000'000;  // Never enough.
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_EQ(platform.stats().model_updates, 0u);
}

TEST_F(PlatformTest, ManualUpdateRespectsMinimum) {
  DataPlatformConfig config = FastPlatformConfig();
  config.min_update_samples = 1'000'000;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  ASSERT_TRUE(platform.Process(workload_->incremental[0]).ok());
  EXPECT_EQ(platform.Update().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlatformTest, ManualUpdateSucceedsWithSelection) {
  DataPlatformConfig config = FastPlatformConfig();
  config.min_update_samples = 1;
  DataPlatform platform(config);
  ASSERT_TRUE(platform.Initialize(workload_->inventory).ok());
  for (const Dataset& d : workload_->incremental) {
    ASSERT_TRUE(platform.Process(d).ok());
  }
  EXPECT_TRUE(platform.Update().ok());
  EXPECT_EQ(platform.stats().model_updates, 1u);
  // Platform keeps serving after an update.
  EXPECT_TRUE(platform.Process(workload_->incremental[0]).ok());
}

}  // namespace
}  // namespace enld
