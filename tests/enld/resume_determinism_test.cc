// The headline durability property: a platform killed mid-stream and
// restored from its snapshot produces byte-identical detection results on
// the remaining datasets as one that never stopped — including across an
// automatic model update that fires *after* the resume point, and at any
// thread count.

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "data/workload.h"
#include "enld/platform.h"
#include "test_util.h"

namespace enld {
namespace {

namespace fs = std::filesystem;

DataPlatformConfig ResumeConfig() {
  DataPlatformConfig config;
  config.enld.general = testing_util::TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  // Auto-update after every 2nd request with no minimum, so the update
  // lands after the resume boundary — the restored RNG stream and S_c
  // must reproduce it exactly.
  config.update_every = 2;
  config.min_update_samples = 1;
  return config;
}

void ExpectResultsIdentical(const DetectionResult& a,
                            const DetectionResult& b) {
  EXPECT_EQ(a.noisy_indices, b.noisy_indices);
  EXPECT_EQ(a.clean_indices, b.clean_indices);
  EXPECT_EQ(a.recovered_labels, b.recovered_labels);
  EXPECT_EQ(a.per_iteration_clean, b.per_iteration_clean);
  EXPECT_EQ(a.per_iteration_ambiguous, b.per_iteration_ambiguous);
}

class ResumeDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetParallelThreads(0);
    fs::remove_all(snapshot_dir_);
  }

  fs::path snapshot_dir_ =
      fs::path(::testing::TempDir()) / "resume_determinism_snapshots";
};

TEST_F(ResumeDeterminismTest, RestoredPlatformMatchesUninterruptedRun) {
  const Workload workload =
      BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  ASSERT_EQ(workload.incremental.size(), 3u);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SetParallelThreads(threads);
    fs::remove_all(snapshot_dir_);

    // Reference: one platform serves the whole stream without stopping.
    DataPlatform uninterrupted(ResumeConfig());
    ASSERT_TRUE(uninterrupted.Initialize(workload.inventory).ok());
    std::vector<DetectionResult> reference;
    for (const Dataset& arriving : workload.incremental) {
      const auto result = uninterrupted.Process(arriving);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      reference.push_back(result.value());
    }

    // "Killed" run: serve one request, snapshot, and abandon the instance
    // — then stand up a brand-new platform from the snapshot and serve
    // the rest of the stream.
    {
      DataPlatform first_life(ResumeConfig());
      ASSERT_TRUE(first_life.Initialize(workload.inventory).ok());
      const auto result = first_life.Process(workload.incremental[0]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectResultsIdentical(reference[0], result.value());
      ASSERT_TRUE(first_life.SaveSnapshot(snapshot_dir_.string()).ok());
    }

    DataPlatform second_life(ResumeConfig());
    const Status restored =
        second_life.RestoreFromSnapshot(snapshot_dir_.string());
    ASSERT_TRUE(restored.ok()) << restored.ToString();
    ASSERT_EQ(second_life.stats().requests, 1u);
    for (size_t i = 1; i < workload.incremental.size(); ++i) {
      const auto result = second_life.Process(workload.incremental[i]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectResultsIdentical(reference[i], result.value());
    }

    // The auto-update fired once in each life (after requests 2 in the
    // reference; after the post-resume request 2 in the resumed run), and
    // the final service counters agree.
    EXPECT_EQ(second_life.stats().requests, uninterrupted.stats().requests);
    EXPECT_EQ(second_life.stats().samples_processed,
              uninterrupted.stats().samples_processed);
    EXPECT_EQ(second_life.stats().samples_flagged_noisy,
              uninterrupted.stats().samples_flagged_noisy);
    EXPECT_EQ(second_life.stats().model_updates,
              uninterrupted.stats().model_updates);
    EXPECT_GT(second_life.stats().model_updates, 0u);
  }
}

}  // namespace
}  // namespace enld
