// Determinism contract of the parallel substrate: every detector output
// and every parallelized kernel must be bit-identical at any thread count,
// including the ENLD_THREADS=1 sequential path.

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "enld/framework.h"
#include "knn/class_index.h"
#include "nn/confident_joint.h"
#include "nn/mlp.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelThreads(0); }
};

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

TEST_F(DeterminismTest, MatMulKernelsBitIdenticalAcrossThreadCounts) {
  // Large enough to cross the parallel thresholds in matrix.cc.
  const Matrix a = RandomMatrix(96, 80, 1);   // m x k
  const Matrix b = RandomMatrix(80, 96, 2);   // k x n
  const Matrix bt = RandomMatrix(96, 80, 3);  // n x k (for MatMulBt)
  const Matrix c = RandomMatrix(96, 64, 4);   // same rows as a (for MatMulAt)

  SetParallelThreads(1);
  Matrix mm1, bt1, at1, sm1;
  MatMul(a, b, &mm1);
  MatMulBt(a, bt, &bt1);
  MatMulAt(a, c, &at1);
  SoftmaxRows(mm1, &sm1);

  for (size_t threads : {size_t{2}, size_t{4}}) {
    SetParallelThreads(threads);
    Matrix mm, btm, atm, sm;
    MatMul(a, b, &mm);
    MatMulBt(a, bt, &btm);
    MatMulAt(a, c, &atm);
    SoftmaxRows(mm, &sm);
    EXPECT_TRUE(BitIdentical(mm, mm1)) << "MatMul, threads=" << threads;
    EXPECT_TRUE(BitIdentical(btm, bt1)) << "MatMulBt, threads=" << threads;
    EXPECT_TRUE(BitIdentical(atm, at1)) << "MatMulAt, threads=" << threads;
    EXPECT_TRUE(BitIdentical(sm, sm1)) << "Softmax, threads=" << threads;
  }
}

TEST_F(DeterminismTest, BatchedKnnQueriesMatchSequentialQueries) {
  const Matrix points = RandomMatrix(400, 8, 7);
  std::vector<int> labels(points.rows());
  std::vector<size_t> rows(points.rows());
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = i;
    labels[i] = static_cast<int>(i % 5);
  }

  SetParallelThreads(1);
  const ClassKnnIndex sequential_index(points, labels, rows, 5);
  std::vector<std::vector<Neighbor>> expected(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    expected[i] = sequential_index.Nearest(labels[i], points.Row(i), 4);
  }

  SetParallelThreads(4);
  const ClassKnnIndex parallel_index(points, labels, rows, 5);
  const auto batched = parallel_index.NearestBatch(labels, points, rows, 4);
  ASSERT_EQ(batched.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(batched[i].size(), expected[i].size()) << "query " << i;
    for (size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_EQ(batched[i][j].index, expected[i][j].index);
      EXPECT_EQ(batched[i][j].distance_squared,
                expected[i][j].distance_squared);
    }
  }
}

EnldConfig FastEnldConfig() {
  EnldConfig config;
  config.general = TinyGeneralConfig();
  config.iterations = 3;
  config.steps_per_iteration = 3;
  return config;
}

/// Full detector run (Setup + every incremental dataset) at a given thread
/// count; returns all partitions and the confident-joint conditional.
struct DetectorOutputs {
  std::vector<std::vector<size_t>> clean;
  std::vector<std::vector<size_t>> noisy;
  std::vector<std::vector<double>> conditional;
};

DetectorOutputs RunDetectorAt(size_t threads, const Workload& workload) {
  SetParallelThreads(threads);
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload.inventory);
  DetectorOutputs out;
  out.conditional = enld.conditional();
  for (const Dataset& incremental : workload.incremental) {
    DetectionResult result = enld.Detect(incremental);
    out.clean.push_back(std::move(result.clean_indices));
    out.noisy.push_back(std::move(result.noisy_indices));
  }
  return out;
}

TEST_F(DeterminismTest, DetectorOutputsBitIdenticalAcrossThreadCounts) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  const DetectorOutputs sequential = RunDetectorAt(1, workload);
  ASSERT_FALSE(sequential.clean.empty());

  for (size_t threads : {size_t{2}, size_t{4}}) {
    const DetectorOutputs parallel = RunDetectorAt(threads, workload);
    // The conditional P̃ is double-precision output of the parallelized
    // confident-joint estimation: exact equality required.
    EXPECT_EQ(parallel.conditional, sequential.conditional)
        << "threads=" << threads;
    EXPECT_EQ(parallel.clean, sequential.clean) << "threads=" << threads;
    EXPECT_EQ(parallel.noisy, sequential.noisy) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace enld
