#include "nn/layer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"

namespace enld {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(rng.Gaussian(0.0, scale));
    }
  }
  return m;
}

TEST(LinearLayerTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  LinearLayer layer(2, 3, rng);
  // Overwrite parameters with known values.
  auto params = layer.Params();
  Matrix& w = *params[0].value;
  Matrix& b = *params[1].value;
  w(0, 0) = 1.0f; w(0, 1) = 2.0f; w(0, 2) = 3.0f;
  w(1, 0) = -1.0f; w(1, 1) = 0.5f; w(1, 2) = 0.0f;
  b(0, 0) = 0.1f; b(0, 1) = 0.2f; b(0, 2) = 0.3f;

  Matrix input(1, 2);
  input(0, 0) = 2.0f;
  input(0, 1) = 4.0f;
  Matrix output;
  layer.Forward(input, &output);
  EXPECT_FLOAT_EQ(output(0, 0), 2.0f - 4.0f + 0.1f);
  EXPECT_FLOAT_EQ(output(0, 1), 4.0f + 2.0f + 0.2f);
  EXPECT_FLOAT_EQ(output(0, 2), 6.0f + 0.3f);
}

TEST(LinearLayerTest, HeInitializationScale) {
  Rng rng(2);
  LinearLayer layer(100, 50, rng);
  const Matrix& w = *layer.Params()[0].value;
  double sum_sq = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    sum_sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  const double variance = sum_sq / w.size();
  EXPECT_NEAR(variance, 2.0 / 100.0, 0.005);
  // Bias starts at zero.
  const Matrix& b = *layer.Params()[1].value;
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b.data()[i], 0.0f);
}

/// Numerical gradient check: perturb each parameter/input and compare the
/// finite-difference loss delta with the backward-pass gradient.
TEST(LinearLayerTest, GradientCheck) {
  Rng rng(3);
  LinearLayer layer(3, 2, rng);
  const Matrix input = RandomMatrix(4, 3, rng);
  const Matrix targets = OneHot({0, 1, 0, 1}, 2);

  auto loss_of = [&](const Matrix& in) {
    Matrix logits;
    layer.Forward(in, &logits);
    return SoftmaxCrossEntropy(logits, targets, nullptr);
  };

  // Analytic gradients.
  Matrix logits;
  layer.Forward(input, &logits);
  Matrix grad_logits;
  SoftmaxCrossEntropy(logits, targets, &grad_logits);
  layer.ZeroGrads();
  Matrix grad_input;
  layer.Backward(grad_logits, &grad_input);

  const float eps = 1e-3f;

  // Check input gradient entries.
  for (size_t r = 0; r < input.rows(); ++r) {
    for (size_t c = 0; c < input.cols(); ++c) {
      Matrix plus = input;
      plus(r, c) += eps;
      Matrix minus = input;
      minus(r, c) -= eps;
      const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * eps);
      EXPECT_NEAR(numeric, grad_input(r, c), 2e-2)
          << "input grad at (" << r << "," << c << ")";
    }
  }

  // Check a handful of weight gradients.
  auto params = layer.Params();
  Matrix& w = *params[0].value;
  const Matrix& gw = *params[0].grad;
  layer.Forward(input, &logits);  // Refresh cache after perturbations.
  for (size_t r = 0; r < w.rows(); ++r) {
    for (size_t c = 0; c < w.cols(); ++c) {
      const float original = w(r, c);
      w(r, c) = original + eps;
      const double up = loss_of(input);
      w(r, c) = original - eps;
      const double down = loss_of(input);
      w(r, c) = original;
      EXPECT_NEAR((up - down) / (2.0 * eps), gw(r, c), 2e-2)
          << "weight grad at (" << r << "," << c << ")";
    }
  }
}

TEST(ReluLayerTest, ForwardClampsNegatives) {
  ReluLayer relu;
  Matrix input(1, 4);
  input(0, 0) = -1.0f;
  input(0, 1) = 0.0f;
  input(0, 2) = 2.5f;
  input(0, 3) = -0.1f;
  Matrix output;
  relu.Forward(input, &output);
  EXPECT_FLOAT_EQ(output(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(output(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(output(0, 2), 2.5f);
  EXPECT_FLOAT_EQ(output(0, 3), 0.0f);
}

TEST(ReluLayerTest, BackwardMasksGradient) {
  ReluLayer relu;
  Matrix input(1, 3);
  input(0, 0) = -1.0f;
  input(0, 1) = 1.0f;
  input(0, 2) = 3.0f;
  Matrix output;
  relu.Forward(input, &output);
  Matrix grad_out(1, 3, 1.0f);
  Matrix grad_in;
  relu.Backward(grad_out, &grad_in);
  EXPECT_FLOAT_EQ(grad_in(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(grad_in(0, 2), 1.0f);
}

TEST(ReluLayerTest, HasNoParams) {
  ReluLayer relu;
  EXPECT_TRUE(relu.Params().empty());
}

TEST(LayerTest, ZeroGradsClearsAccumulators) {
  Rng rng(4);
  LinearLayer layer(2, 2, rng);
  const Matrix input = RandomMatrix(3, 2, rng);
  Matrix output;
  layer.Forward(input, &output);
  Matrix grad_out(3, 2, 1.0f);
  Matrix grad_in;
  layer.Backward(grad_out, &grad_in);
  bool any_nonzero = false;
  for (ParamRef p : layer.Params()) {
    for (size_t i = 0; i < p.grad->size(); ++i) {
      if (p.grad->data()[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  layer.ZeroGrads();
  for (ParamRef p : layer.Params()) {
    for (size_t i = 0; i < p.grad->size(); ++i) {
      EXPECT_EQ(p.grad->data()[i], 0.0f);
    }
  }
}

TEST(LayerTest, BackwardAccumulatesAcrossCalls) {
  Rng rng(5);
  LinearLayer layer(2, 2, rng);
  const Matrix input = RandomMatrix(2, 2, rng);
  Matrix output, grad_in;
  Matrix grad_out(2, 2, 1.0f);

  layer.ZeroGrads();
  layer.Forward(input, &output);
  layer.Backward(grad_out, &grad_in);
  const float once = layer.Params()[0].grad->At(0, 0);
  layer.Forward(input, &output);
  layer.Backward(grad_out, &grad_in);
  EXPECT_FLOAT_EQ(layer.Params()[0].grad->At(0, 0), 2.0f * once);
}

}  // namespace
}  // namespace enld
