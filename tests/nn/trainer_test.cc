#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/synthetic.h"

namespace enld {
namespace {

SyntheticConfig EasyConfig() {
  SyntheticConfig config;
  config.num_classes = 5;
  config.samples_per_class = 60;
  config.feature_dim = 8;
  config.class_separation = 8.0;
  config.seed = 21;
  return config;
}

std::unique_ptr<MlpModel> FreshModel(const Dataset& data, uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<MlpModel>(
      std::vector<size_t>{data.dim(), 16, 8,
                          static_cast<size_t>(data.num_classes)},
      rng);
}

TEST(TrainerTest, LearnsSeparableTask) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto model = FreshModel(data, 1);
  TrainConfig config;
  config.epochs = 15;
  config.seed = 2;
  const TrainResult result = TrainModel(model.get(), data, nullptr, config);
  EXPECT_EQ(result.epochs_run, 15u);
  EXPECT_GT(AccuracyAgainstTrue(model.get(), data), 0.95);
}

TEST(TrainerTest, LossDecreases) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto model = FreshModel(data, 3);
  TrainConfig one_epoch;
  one_epoch.epochs = 1;
  one_epoch.seed = 4;
  const double first =
      TrainModel(model.get(), data, nullptr, one_epoch).final_train_loss;
  TrainConfig more;
  more.epochs = 10;
  more.seed = 5;
  const double later =
      TrainModel(model.get(), data, nullptr, more).final_train_loss;
  EXPECT_LT(later, first);
}

TEST(TrainerTest, ZeroEpochsIsNoOp) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto model = FreshModel(data, 6);
  const auto before = model->GetWeights();
  TrainConfig config;
  config.epochs = 0;
  const TrainResult result = TrainModel(model.get(), data, nullptr, config);
  EXPECT_EQ(result.epochs_run, 0u);
  EXPECT_EQ(model->GetWeights(), before);
}

TEST(TrainerTest, SkipsMissingLabels) {
  Dataset data = GenerateSynthetic(EasyConfig());
  // Mask every sample: nothing trainable -> weights unchanged.
  Rng rng(7);
  MaskMissingLabels(&data, 1.0, rng);
  auto model = FreshModel(data, 8);
  const auto before = model->GetWeights();
  TrainConfig config;
  config.epochs = 3;
  TrainModel(model.get(), data, nullptr, config);
  EXPECT_EQ(model->GetWeights(), before);
}

TEST(TrainerTest, PartialMissingLabelsStillTrains) {
  Dataset data = GenerateSynthetic(EasyConfig());
  Rng rng(9);
  MaskMissingLabels(&data, 0.5, rng);
  auto model = FreshModel(data, 10);
  TrainConfig config;
  config.epochs = 12;
  config.seed = 11;
  TrainModel(model.get(), data, nullptr, config);
  EXPECT_GT(AccuracyAgainstTrue(model.get(), data), 0.9);
}

TEST(TrainerTest, MixupTrainingStillLearns) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto model = FreshModel(data, 12);
  TrainConfig config;
  config.epochs = 15;
  config.mixup_alpha = 0.2;
  config.seed = 13;
  TrainModel(model.get(), data, nullptr, config);
  EXPECT_GT(AccuracyAgainstTrue(model.get(), data), 0.9);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto run = [&](uint64_t seed) {
    auto model = FreshModel(data, 14);
    TrainConfig config;
    config.epochs = 3;
    config.mixup_alpha = 0.2;
    config.seed = seed;
    TrainModel(model.get(), data, nullptr, config);
    return model->GetWeights();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(TrainerTest, ValidationAccuracyReported) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto model = FreshModel(data, 15);
  TrainConfig config;
  config.epochs = 10;
  config.seed = 16;
  const TrainResult result = TrainModel(model.get(), data, &data, config);
  EXPECT_GT(result.best_validation_accuracy, 0.9);
}

TEST(TrainerTest, SelectBestRestoresBestWeights) {
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto model = FreshModel(data, 17);
  TrainConfig config;
  config.epochs = 10;
  config.seed = 18;
  config.select_best_on_validation = true;
  const TrainResult result = TrainModel(model.get(), data, &data, config);
  // The restored weights must reproduce the best validation accuracy.
  EXPECT_NEAR(AccuracyAgainstObserved(model.get(), data),
              result.best_validation_accuracy, 1e-9);
}

TEST(TrainerTest, LrDecayApplied) {
  // With lr decay ~0, later epochs barely move the weights: the final loss
  // with heavy decay should be higher than with no decay.
  const Dataset data = GenerateSynthetic(EasyConfig());
  auto decayed = FreshModel(data, 19);
  TrainConfig heavy;
  heavy.epochs = 10;
  heavy.lr_decay_per_epoch = 0.1;
  heavy.seed = 20;
  const double heavy_loss =
      TrainModel(decayed.get(), data, nullptr, heavy).final_train_loss;

  auto constant = FreshModel(data, 19);
  TrainConfig none;
  none.epochs = 10;
  none.lr_decay_per_epoch = 1.0;
  none.seed = 20;
  const double none_loss =
      TrainModel(constant.get(), data, nullptr, none).final_train_loss;
  EXPECT_GT(heavy_loss, none_loss);
}

TEST(AccuracyTest, AgainstObservedVsTrue) {
  Matrix features(2, 1);
  features(0, 0) = 0.0f;
  features(1, 0) = 1.0f;
  Dataset data = MakeDataset(std::move(features), {1, 0}, {0, 0}, 2);
  Rng rng(21);
  MlpModel model({1, 4, 2}, rng);
  const auto predicted = model.Predict(data.features);
  double expected_obs = 0.0;
  double expected_true = 0.0;
  for (size_t i = 0; i < 2; ++i) {
    if (predicted[i] == data.observed_labels[i]) expected_obs += 0.5;
    if (predicted[i] == data.true_labels[i]) expected_true += 0.5;
  }
  EXPECT_DOUBLE_EQ(AccuracyAgainstObserved(&model, data), expected_obs);
  EXPECT_DOUBLE_EQ(AccuracyAgainstTrue(&model, data), expected_true);
}

TEST(AccuracyTest, EmptyDatasetIsZero) {
  Rng rng(22);
  MlpModel model({1, 2, 2}, rng);
  Dataset empty;
  EXPECT_EQ(AccuracyAgainstObserved(&model, empty), 0.0);
  EXPECT_EQ(AccuracyAgainstTrue(&model, empty), 0.0);
}

}  // namespace
}  // namespace enld
