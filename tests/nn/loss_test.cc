#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace enld {
namespace {

TEST(OneHotTest, EncodesLabels) {
  const Matrix m = OneHot({2, 0}, 3);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 1.0f);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(1, 0), 1.0f);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Matrix logits(2, 4, 0.0f);
  const double loss =
      SoftmaxCrossEntropy(logits, {1, 3}, 4, nullptr);
  EXPECT_NEAR(loss, std::log(4.0), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionLowLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 1) = 20.0f;
  const double loss = SoftmaxCrossEntropy(logits, {1}, 3, nullptr);
  EXPECT_LT(loss, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, ConfidentWrongPredictionHighLoss) {
  Matrix logits(1, 3, 0.0f);
  logits(0, 0) = 20.0f;
  const double loss = SoftmaxCrossEntropy(logits, {1}, 3, nullptr);
  EXPECT_GT(loss, 10.0);
}

TEST(SoftmaxCrossEntropyTest, GradientIsSoftmaxMinusTarget) {
  Matrix logits(1, 3);
  logits(0, 0) = 1.0f;
  logits(0, 1) = 2.0f;
  logits(0, 2) = 0.5f;
  Matrix grad;
  SoftmaxCrossEntropy(logits, {1}, 3, &grad);
  Matrix probs;
  SoftmaxRows(logits, &probs);
  EXPECT_NEAR(grad(0, 0), probs(0, 0), 1e-6);
  EXPECT_NEAR(grad(0, 1), probs(0, 1) - 1.0f, 1e-6);
  EXPECT_NEAR(grad(0, 2), probs(0, 2), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientScaledByBatch) {
  Matrix logits(4, 2, 0.0f);
  Matrix grad;
  SoftmaxCrossEntropy(logits, {0, 0, 0, 0}, 2, &grad);
  // Per sample grad entry for class 1 is softmax=0.5; mean-scaled by 1/4.
  EXPECT_NEAR(grad(0, 1), 0.5f / 4.0f, 1e-6);
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  Rng rng(1);
  Matrix logits(5, 6);
  for (size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix grad;
  SoftmaxCrossEntropy(logits, {0, 1, 2, 3, 4}, 6, &grad);
  for (size_t r = 0; r < grad.rows(); ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < grad.cols(); ++c) sum += grad(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
  }
}

TEST(SoftmaxCrossEntropyTest, SoftTargetsMixupStyle) {
  // Loss against a 50/50 soft target equals the average of the two
  // hard-label losses (cross-entropy is linear in the target).
  Matrix logits(1, 2);
  logits(0, 0) = 1.0f;
  logits(0, 1) = -1.0f;
  Matrix soft(1, 2);
  soft(0, 0) = 0.5f;
  soft(0, 1) = 0.5f;
  const double mixed = SoftmaxCrossEntropy(logits, soft, nullptr);
  const double l0 = SoftmaxCrossEntropy(logits, {0}, 2, nullptr);
  const double l1 = SoftmaxCrossEntropy(logits, {1}, 2, nullptr);
  EXPECT_NEAR(mixed, 0.5 * (l0 + l1), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, NumericallyStableExtremeLogits) {
  Matrix logits(1, 2);
  logits(0, 0) = 10000.0f;
  logits(0, 1) = -10000.0f;
  const double loss = SoftmaxCrossEntropy(logits, {1}, 2, nullptr);
  EXPECT_FALSE(std::isnan(loss));
  EXPECT_FALSE(std::isinf(loss));
  EXPECT_GT(loss, 1.0);
}

}  // namespace
}  // namespace enld
