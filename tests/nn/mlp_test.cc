#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"

namespace enld {
namespace {

Matrix XorInputs() {
  Matrix x(4, 2);
  x(0, 0) = 0; x(0, 1) = 0;
  x(1, 0) = 0; x(1, 1) = 1;
  x(2, 0) = 1; x(2, 1) = 0;
  x(3, 0) = 1; x(3, 1) = 1;
  return x;
}

TEST(MlpModelTest, ShapesAndAccessors) {
  Rng rng(1);
  MlpModel model({8, 16, 4, 3}, rng);
  EXPECT_EQ(model.input_dim(), 8u);
  EXPECT_EQ(model.feature_dim(), 4u);
  EXPECT_EQ(model.num_classes(), 3);

  Matrix inputs(5, 8, 0.5f);
  Matrix logits, features;
  model.Forward(inputs, &logits, &features);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 3u);
  EXPECT_EQ(features.rows(), 5u);
  EXPECT_EQ(features.cols(), 4u);
}

TEST(MlpModelTest, FeaturesAreNonNegative) {
  // The feature tap sits after a ReLU.
  Rng rng(2);
  MlpModel model({4, 8, 2}, rng);
  Matrix inputs(10, 4);
  Rng data_rng(3);
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs.data()[i] = static_cast<float>(data_rng.Gaussian());
  }
  const Matrix features = model.Features(inputs);
  for (size_t i = 0; i < features.size(); ++i) {
    EXPECT_GE(features.data()[i], 0.0f);
  }
}

TEST(MlpModelTest, ProbabilitiesRowStochastic) {
  Rng rng(4);
  MlpModel model({3, 6, 4}, rng);
  Matrix inputs(7, 3, 1.0f);
  const Matrix probs = model.Probabilities(inputs);
  for (size_t r = 0; r < probs.rows(); ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < probs.cols(); ++c) sum += probs(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(MlpModelTest, PredictMatchesProbabilitiesArgmax) {
  Rng rng(5);
  MlpModel model({3, 8, 5}, rng);
  Matrix inputs(20, 3);
  Rng data_rng(6);
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs.data()[i] = static_cast<float>(data_rng.Gaussian());
  }
  const auto predicted = model.Predict(inputs);
  const Matrix probs = model.Probabilities(inputs);
  for (size_t r = 0; r < inputs.rows(); ++r) {
    EXPECT_EQ(predicted[r], static_cast<int>(ArgMaxRow(probs, r)));
  }
}

TEST(MlpModelTest, WeightsRoundTrip) {
  Rng rng(7);
  MlpModel a({4, 8, 3}, rng);
  Rng rng2(99);
  MlpModel b({4, 8, 3}, rng2);

  Matrix inputs(3, 4, 0.7f);
  const auto pa = a.Probabilities(inputs);
  b.SetWeights(a.GetWeights());
  const auto pb = b.Probabilities(inputs);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.data()[i], pb.data()[i]);
  }
}

TEST(MlpModelTest, GetWeightsSizeIsParameterCount) {
  Rng rng(8);
  MlpModel model({4, 8, 3}, rng);
  // Linear(4,8): 4*8+8, Linear(8,3): 8*3+3.
  EXPECT_EQ(model.GetWeights().size(), 4u * 8 + 8 + 8 * 3 + 3);
  size_t total = 0;
  for (ParamRef p : model.Params()) total += p.value->size();
  EXPECT_EQ(total, model.GetWeights().size());
}

TEST(MlpModelTest, TrainStepReducesLossOnFixedBatch) {
  Rng rng(9);
  MlpModel model({2, 16, 2}, rng);
  SgdOptimizer optimizer({0.1, 0.9, 0.0});
  const Matrix x = XorInputs();
  const Matrix y = OneHot({0, 1, 1, 0}, 2);  // XOR.
  const double initial = model.TrainStep(x, y, &optimizer);
  double last = initial;
  for (int i = 0; i < 200; ++i) last = model.TrainStep(x, y, &optimizer);
  EXPECT_LT(last, initial * 0.5);
}

TEST(MlpModelTest, LearnsXorCompletely) {
  Rng rng(10);
  MlpModel model({2, 16, 2}, rng);
  SgdOptimizer optimizer({0.2, 0.9, 0.0});
  const Matrix x = XorInputs();
  const Matrix y = OneHot({0, 1, 1, 0}, 2);
  for (int i = 0; i < 500; ++i) model.TrainStep(x, y, &optimizer);
  EXPECT_EQ(model.Predict(x), (std::vector<int>{0, 1, 1, 0}));
}

TEST(MlpModelTest, DeterministicTraining) {
  auto run = [] {
    Rng rng(11);
    MlpModel model({2, 8, 2}, rng);
    SgdOptimizer optimizer({0.1, 0.9, 1e-4});
    const Matrix x = XorInputs();
    const Matrix y = OneHot({0, 1, 1, 0}, 2);
    for (int i = 0; i < 50; ++i) model.TrainStep(x, y, &optimizer);
    return model.GetWeights();
  };
  EXPECT_EQ(run(), run());
}

TEST(ModelZooTest, BackboneDims) {
  const auto resnet110 =
      BackboneLayerDims(Backbone::kResNet110Sim, 32, 100);
  EXPECT_EQ(resnet110.front(), 32u);
  EXPECT_EQ(resnet110.back(), 100u);
  const auto densenet =
      BackboneLayerDims(Backbone::kDenseNet121Sim, 32, 100);
  // DenseNet-121-sim is deeper than ResNet-110-sim.
  EXPECT_GT(densenet.size(), resnet110.size());
}

TEST(ModelZooTest, Names) {
  EXPECT_STREQ(BackboneName(Backbone::kResNet110Sim), "resnet110-sim");
  EXPECT_STREQ(BackboneName(Backbone::kDenseNet121Sim), "densenet121-sim");
  EXPECT_STREQ(BackboneName(Backbone::kResNet164Sim), "resnet164-sim");
}

TEST(ModelZooTest, MakeBackboneModelWorks) {
  Rng rng(12);
  for (Backbone b : {Backbone::kResNet110Sim, Backbone::kDenseNet121Sim,
                     Backbone::kResNet164Sim}) {
    auto model = MakeBackboneModel(b, 16, 10, rng);
    EXPECT_EQ(model->input_dim(), 16u);
    EXPECT_EQ(model->num_classes(), 10);
  }
}

TEST(OptimizerTest, StepMovesWeightsAgainstGradient) {
  Rng rng(13);
  MlpModel model({2, 4, 2}, rng);
  auto params = model.Params();
  params[0].grad->Fill(1.0f);
  const float before = params[0].value->At(0, 0);
  SgdOptimizer optimizer({0.1, 0.0, 0.0});
  optimizer.Step(params);
  EXPECT_FLOAT_EQ(params[0].value->At(0, 0), before - 0.1f);
}

TEST(OptimizerTest, MomentumAccumulates) {
  Matrix w(1, 1, 0.0f);
  Matrix g(1, 1, 1.0f);
  SgdOptimizer optimizer({0.1, 0.9, 0.0});
  std::vector<ParamRef> params = {{&w, &g}};
  optimizer.Step(params);
  const float first_step = -w(0, 0);
  w(0, 0) = 0.0f;
  optimizer.Step(params);
  // Second step = momentum * v + lr * g > first step.
  EXPECT_GT(-w(0, 0), first_step);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Matrix w(1, 1, 10.0f);
  Matrix g(1, 1, 0.0f);
  SgdOptimizer optimizer({0.1, 0.0, 0.1});
  std::vector<ParamRef> params = {{&w, &g}};
  optimizer.Step(params);
  EXPECT_LT(w(0, 0), 10.0f);
}

TEST(OptimizerTest, LearningRateAccessors) {
  SgdOptimizer optimizer({0.5, 0.9, 0.0});
  EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 0.5);
  optimizer.set_learning_rate(0.25);
  EXPECT_DOUBLE_EQ(optimizer.learning_rate(), 0.25);
}

}  // namespace
}  // namespace enld
