#include "nn/confident_joint.h"

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/synthetic.h"
#include "nn/trainer.h"

namespace enld {
namespace {

struct TrainedSetup {
  Dataset train;
  Dataset holdout;
  std::unique_ptr<MlpModel> model;
};

TrainedSetup MakeTrainedSetup(double noise_rate) {
  SyntheticConfig config;
  config.num_classes = 6;
  config.samples_per_class = 80;
  config.feature_dim = 8;
  config.class_separation = 7.0;
  config.seed = 31;
  Dataset all = GenerateSynthetic(config);
  Rng rng(32);
  if (noise_rate > 0) {
    const auto t = TransitionMatrix::PairAsymmetric(6, noise_rate);
    ApplyLabelNoise(&all, t, rng);
  }
  std::vector<size_t> first_half, second_half;
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? first_half : second_half).push_back(i);
  }
  TrainedSetup setup;
  setup.train = all.Subset(first_half);
  setup.holdout = all.Subset(second_half);
  Rng model_rng(33);
  setup.model = std::make_unique<MlpModel>(
      std::vector<size_t>{8, 16, 8, 6}, model_rng);
  TrainConfig train;
  train.epochs = 12;
  train.seed = 34;
  TrainModel(setup.model.get(), setup.train, nullptr, train);
  return setup;
}

TEST(JointCountsTest, CountsSumToLabeledSamples) {
  TrainedSetup setup = MakeTrainedSetup(0.2);
  const JointCounts joint =
      EstimateJointCounts(setup.model.get(), setup.holdout);
  double total = 0.0;
  for (const auto& row : joint) {
    for (double v : row) total += v;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(setup.holdout.size()));
}

TEST(JointCountsTest, CleanDataIsDiagonalDominant) {
  TrainedSetup setup = MakeTrainedSetup(0.0);
  const JointCounts joint =
      EstimateJointCounts(setup.model.get(), setup.holdout);
  for (size_t i = 0; i < joint.size(); ++i) {
    double row_sum = 0.0;
    for (double v : joint[i]) row_sum += v;
    if (row_sum > 0) {
      EXPECT_GT(joint[i][i] / row_sum, 0.6) << "class " << i;
    }
  }
}

TEST(JointCountsTest, NoisyDataShowsPairStructure) {
  TrainedSetup setup = MakeTrainedSetup(0.3);
  const JointCounts joint =
      EstimateJointCounts(setup.model.get(), setup.holdout);
  // In aggregate, the off-diagonal mass of row i (observed i) must sit on
  // class i-1 (the pair-noise source) more than on an average other class.
  const int classes = static_cast<int>(joint.size());
  double pair_mass = 0.0;
  double other_mass = 0.0;
  for (int i = 0; i < classes; ++i) {
    const int source = (i + classes - 1) % classes;
    for (int j = 0; j < classes; ++j) {
      if (j == i) continue;
      if (j == source) {
        pair_mass += joint[i][j];
      } else {
        other_mass += joint[i][j];
      }
    }
  }
  // Per-cell: one pair cell per row vs (classes - 2) other cells.
  EXPECT_GT(pair_mass, other_mass / (classes - 2));
}

TEST(JointCountsTest, SkipsMissingLabels) {
  TrainedSetup setup = MakeTrainedSetup(0.1);
  Rng rng(35);
  MaskMissingLabels(&setup.holdout, 0.5, rng);
  const JointCounts joint =
      EstimateJointCounts(setup.model.get(), setup.holdout);
  double total = 0.0;
  for (const auto& row : joint) {
    for (double v : row) total += v;
  }
  EXPECT_DOUBLE_EQ(
      total, static_cast<double>(setup.holdout.size() -
                                 setup.holdout.MissingLabelIndices().size()));
}

TEST(ConfidentJointTest, MoreConservativeThanPlainCounts) {
  TrainedSetup setup = MakeTrainedSetup(0.2);
  const JointCounts plain =
      EstimateJointCounts(setup.model.get(), setup.holdout);
  const JointCounts confident =
      EstimateConfidentJoint(setup.model.get(), setup.holdout);
  double plain_total = 0.0, confident_total = 0.0;
  for (size_t i = 0; i < plain.size(); ++i) {
    for (size_t j = 0; j < plain.size(); ++j) {
      plain_total += plain[i][j];
      confident_total += confident[i][j];
    }
  }
  // Thresholding can only drop samples.
  EXPECT_LE(confident_total, plain_total);
  EXPECT_GT(confident_total, 0.0);
}

TEST(ConditionalTest, RowsAreDistributions) {
  TrainedSetup setup = MakeTrainedSetup(0.2);
  const auto joint = EstimateJointCounts(setup.model.get(), setup.holdout);
  const auto conditional = ConditionalFromJoint(joint);
  for (const auto& row : conditional) {
    double sum = 0.0;
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ConditionalTest, ZeroRowFallsBackToIdentity) {
  JointCounts joint = {{0.0, 0.0}, {3.0, 1.0}};
  const auto conditional = ConditionalFromJoint(joint);
  EXPECT_DOUBLE_EQ(conditional[0][0], 1.0);
  EXPECT_DOUBLE_EQ(conditional[0][1], 0.0);
  EXPECT_DOUBLE_EQ(conditional[1][0], 0.75);
  EXPECT_DOUBLE_EQ(conditional[1][1], 0.25);
}

TEST(ConditionalTest, EstimateTracksTrueNoiseRate) {
  // P̃(y* = i | ỹ = i) must decrease with the injected noise rate and stay
  // far above chance (the estimate is biased by model error, so we assert
  // the ordering rather than the absolute value).
  auto mean_diag = [](double eta) {
    TrainedSetup setup = MakeTrainedSetup(eta);
    const auto joint =
        EstimateJointCounts(setup.model.get(), setup.holdout);
    const auto conditional = ConditionalFromJoint(joint);
    double diag = 0.0;
    for (size_t i = 0; i < conditional.size(); ++i) {
      diag += conditional[i][i];
    }
    return diag / conditional.size();
  };
  const double low = mean_diag(0.1);
  const double high = mean_diag(0.4);
  EXPECT_GT(low, high);
  EXPECT_GT(low, 0.55);
  EXPECT_GT(high, 1.0 / 6.0);  // Far above the 6-class chance level.
}

}  // namespace
}  // namespace enld
