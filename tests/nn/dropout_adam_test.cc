#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace enld {
namespace {

TEST(DropoutLayerTest, IdentityAtInference) {
  DropoutLayer dropout(0.5, 1);
  Matrix input(2, 3, 2.0f);
  Matrix output;
  dropout.Forward(input, &output);  // Training mode off by default.
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(output.data()[i], 2.0f);
  }
}

TEST(DropoutLayerTest, DropsApproximatelyRateFraction) {
  DropoutLayer dropout(0.3, 2);
  dropout.SetTraining(true);
  Matrix input(100, 100, 1.0f);
  Matrix output;
  dropout.Forward(input, &output);
  size_t zeros = 0;
  for (size_t i = 0; i < output.size(); ++i) {
    if (output.data()[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / output.size(), 0.3, 0.02);
}

TEST(DropoutLayerTest, SurvivorsScaledForUnbiasedExpectation) {
  DropoutLayer dropout(0.5, 3);
  dropout.SetTraining(true);
  Matrix input(50, 50, 1.0f);
  Matrix output;
  dropout.Forward(input, &output);
  double sum = 0.0;
  for (size_t i = 0; i < output.size(); ++i) sum += output.data()[i];
  // E[output] = input, so the mean should stay near 1.
  EXPECT_NEAR(sum / output.size(), 1.0, 0.1);
  for (size_t i = 0; i < output.size(); ++i) {
    const float v = output.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 2.0f);
  }
}

TEST(DropoutLayerTest, BackwardUsesSameMask) {
  DropoutLayer dropout(0.5, 4);
  dropout.SetTraining(true);
  Matrix input(1, 32, 1.0f);
  Matrix output;
  dropout.Forward(input, &output);
  Matrix grad_out(1, 32, 1.0f);
  Matrix grad_in;
  dropout.Backward(grad_out, &grad_in);
  for (size_t i = 0; i < output.size(); ++i) {
    EXPECT_EQ(grad_in.data()[i], output.data()[i]);  // grad * mask.
  }
}

TEST(DropoutLayerTest, ZeroRateIsIdentityEvenInTraining) {
  DropoutLayer dropout(0.0, 5);
  dropout.SetTraining(true);
  Matrix input(3, 3, 7.0f);
  Matrix output;
  dropout.Forward(input, &output);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(output.data()[i], 7.0f);
  }
}

TEST(MlpDropoutTest, InferenceIsDeterministicTrainingIsNot) {
  Rng rng(6);
  MlpModel model({4, 16, 3}, rng, /*dropout_rate=*/0.4);
  EXPECT_DOUBLE_EQ(model.dropout_rate(), 0.4);
  Matrix inputs(4, 4, 0.5f);
  // Inference passes are identical (dropout inactive outside TrainStep).
  const Matrix a = model.Probabilities(inputs);
  const Matrix b = model.Probabilities(inputs);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(MlpDropoutTest, StillLearnsSeparableTask) {
  SyntheticConfig config;
  config.num_classes = 4;
  config.samples_per_class = 60;
  config.feature_dim = 8;
  config.class_separation = 8.0;
  config.seed = 7;
  const Dataset data = GenerateSynthetic(config);
  Rng rng(8);
  MlpModel model({8, 16, 8, 4}, rng, /*dropout_rate=*/0.2);
  TrainConfig train;
  train.epochs = 20;
  train.seed = 9;
  TrainModel(&model, data, nullptr, train);
  EXPECT_GT(AccuracyAgainstTrue(&model, data), 0.9);
}

TEST(AdamOptimizerTest, StepMovesAgainstGradient) {
  Matrix w(1, 1, 1.0f);
  Matrix g(1, 1, 1.0f);
  AdamConfig config;
  config.learning_rate = 0.1;
  AdamOptimizer adam(config);
  std::vector<ParamRef> params = {{&w, &g}};
  adam.Step(params);
  EXPECT_LT(w(0, 0), 1.0f);
}

TEST(AdamOptimizerTest, FirstStepSizeIsLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Matrix w(1, 1, 0.0f);
  Matrix g(1, 1, 3.0f);
  AdamConfig config;
  config.learning_rate = 0.01;
  AdamOptimizer adam(config);
  std::vector<ParamRef> params = {{&w, &g}};
  adam.Step(params);
  EXPECT_NEAR(w(0, 0), -0.01, 1e-4);
}

TEST(AdamOptimizerTest, LearningRateAccessors) {
  AdamOptimizer adam(AdamConfig{});
  adam.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.5);
}

TEST(AdamTrainerTest, TrainsThroughTrainModel) {
  SyntheticConfig config;
  config.num_classes = 4;
  config.samples_per_class = 50;
  config.feature_dim = 8;
  config.class_separation = 8.0;
  config.seed = 10;
  const Dataset data = GenerateSynthetic(config);
  Rng rng(11);
  MlpModel model({8, 16, 4}, rng);
  TrainConfig train;
  train.optimizer = OptimizerKind::kAdam;
  train.adam.learning_rate = 0.005;
  train.epochs = 20;
  train.seed = 12;
  TrainModel(&model, data, nullptr, train);
  EXPECT_GT(AccuracyAgainstTrue(&model, data), 0.9);
}

TEST(AdamTrainerTest, PolymorphicTrainStep) {
  Rng rng(13);
  MlpModel model({2, 8, 2}, rng);
  AdamConfig config;
  config.learning_rate = 0.05;
  AdamOptimizer adam(config);
  Matrix x(4, 2);
  x(0, 0) = 0; x(0, 1) = 0;
  x(1, 0) = 0; x(1, 1) = 1;
  x(2, 0) = 1; x(2, 1) = 0;
  x(3, 0) = 1; x(3, 1) = 1;
  const Matrix y = OneHot({0, 1, 1, 0}, 2);
  const double initial = model.TrainStep(x, y, &adam);
  double last = initial;
  for (int i = 0; i < 300; ++i) last = model.TrainStep(x, y, &adam);
  EXPECT_LT(last, initial * 0.5);
}

}  // namespace
}  // namespace enld
