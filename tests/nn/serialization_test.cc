#include "nn/serialization.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace enld {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ModelSerializationTest, RoundTripPreservesOutputs) {
  Rng rng(1);
  MlpModel original({8, 16, 8, 5}, rng);
  const std::string path = TempPath("model_roundtrip.enld");
  ASSERT_TRUE(SaveModel(original, path).ok());

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->layer_dims(), original.layer_dims());

  Matrix inputs(5, 8);
  Rng data_rng(2);
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs.data()[i] = static_cast<float>(data_rng.Gaussian());
  }
  const Matrix a = original.Probabilities(inputs);
  const Matrix b = (*loaded)->Probabilities(inputs);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, MissingFileIsNotFound) {
  const auto loaded = LoadModel(TempPath("does_not_exist.enld"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ModelSerializationTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.enld");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTMODEL", 1, 8, f);
  std::fclose(f);
  const auto loaded = LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, RejectsTruncatedFile) {
  Rng rng(3);
  MlpModel model({4, 8, 3}, rng);
  const std::string path = TempPath("truncated.enld");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Truncate the weight section.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 40), 0);
  const auto loaded = LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, UnwritablePathFails) {
  Rng rng(4);
  MlpModel model({2, 4, 2}, rng);
  EXPECT_EQ(SaveModel(model, "/nonexistent_dir/model.enld").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace enld
