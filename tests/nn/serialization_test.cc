#include "nn/serialization.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace enld {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ModelSerializationTest, RoundTripPreservesOutputs) {
  Rng rng(1);
  MlpModel original({8, 16, 8, 5}, rng);
  const std::string path = TempPath("model_roundtrip.enld");
  ASSERT_TRUE(SaveModel(original, path).ok());

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->layer_dims(), original.layer_dims());

  Matrix inputs(5, 8);
  Rng data_rng(2);
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs.data()[i] = static_cast<float>(data_rng.Gaussian());
  }
  const Matrix a = original.Probabilities(inputs);
  const Matrix b = (*loaded)->Probabilities(inputs);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, MissingFileIsNotFound) {
  const auto loaded = LoadModel(TempPath("does_not_exist.enld"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ModelSerializationTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.enld");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTMODEL", 1, 8, f);
  std::fclose(f);
  const auto loaded = LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, RejectsTruncatedFile) {
  Rng rng(3);
  MlpModel model({4, 8, 3}, rng);
  const std::string path = TempPath("truncated.enld");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Truncate the weight section.
  FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 40), 0);
  const auto loaded = LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, UnwritablePathFails) {
  Rng rng(4);
  MlpModel model({2, 4, 2}, rng);
  EXPECT_EQ(SaveModel(model, "/nonexistent_dir/model.enld").code(),
            StatusCode::kNotFound);
}

TEST(ModelSerializationTest, CurrentFormatCarriesByteOrderTag) {
  Rng rng(5);
  MlpModel model({3, 6, 2}, rng);
  const std::string path = TempPath("tagged.enld");
  ASSERT_TRUE(SaveModel(model, path).ok());

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[8];
  uint32_t tag = 0;
  ASSERT_EQ(std::fread(magic, 1, 8, f), 8u);
  ASSERT_EQ(std::fread(&tag, sizeof(tag), 1, f), 1u);
  std::fclose(f);
  EXPECT_EQ(std::string(magic, 8), "ENLDMDL2");
  EXPECT_EQ(tag, 0x01020304u);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, RejectsForeignEndianFile) {
  // Write a v2 file whose byte-order tag reads back byte-swapped — exactly
  // what a file from a foreign-endian machine looks like here.
  const std::string path = TempPath("foreign_endian.enld");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("ENLDMDL2", 1, 8, f);
  const uint32_t swapped_tag = 0x04030201u;
  std::fwrite(&swapped_tag, sizeof(swapped_tag), 1, f);
  const uint64_t num_dims = 3;
  std::fwrite(&num_dims, sizeof(num_dims), 1, f);
  std::fclose(f);

  const auto loaded = LoadModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("byte order"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, LegacyTaglessFormatStillLoads) {
  // Hand-write a v1 file (no byte-order tag) and check the current reader
  // accepts it: {2, 4, 3} needs 2*4+4 + 4*3+3 = 27 weights.
  const std::string path = TempPath("legacy_v1.enld");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("ENLDMDL1", 1, 8, f);
  const uint64_t dims[] = {3, 2, 4, 3};  // count, then the dims.
  std::fwrite(&dims[0], sizeof(uint64_t), 1, f);
  ASSERT_EQ(dims[0] + 1, 4u);
  std::fwrite(&dims[1], sizeof(uint64_t), 3, f);
  const uint64_t count = 2 * 4 + 4 + 4 * 3 + 3;
  std::fwrite(&count, sizeof(count), 1, f);
  std::vector<float> weights(count);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(i) * 0.25f;
  }
  std::fwrite(weights.data(), sizeof(float), weights.size(), f);
  std::fclose(f);

  const auto loaded = LoadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dims, (std::vector<size_t>{2, 4, 3}));
  EXPECT_EQ(loaded->weights, weights);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, ModelFileRoundTripIsExact) {
  ModelFile file;
  file.dims = {4, 7, 3};
  file.weights.resize(4 * 7 + 7 + 7 * 3 + 3);
  Rng rng(6);
  for (float& w : file.weights) {
    w = static_cast<float>(rng.Gaussian());
  }
  const std::string path = TempPath("model_file.enld");
  ASSERT_TRUE(SaveModelFile(file, path).ok());
  const auto loaded = LoadModelFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dims, file.dims);
  EXPECT_EQ(loaded->weights, file.weights);

  const auto model = ModelFromFile(*loaded);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->GetWeights(), file.weights);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, ModelFromFileRejectsWeightCountMismatch) {
  ModelFile file;
  file.dims = {4, 7, 3};
  file.weights.assign(10, 0.0f);  // Far fewer than the dims require.
  const auto model = ModelFromFile(file);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace enld
