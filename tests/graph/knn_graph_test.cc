#include "graph/knn_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace enld {
namespace {

/// Two Gaussian blobs far apart: rows [0, n1) near origin, rows [n1, n1+n2)
/// near (20, 20, ...).
Matrix TwoBlobs(size_t n1, size_t n2, size_t dim, Rng& rng) {
  Matrix m(n1 + n2, dim);
  for (size_t r = 0; r < n1 + n2; ++r) {
    const float offset = r < n1 ? 0.0f : 20.0f;
    for (size_t c = 0; c < dim; ++c) {
      m(r, c) = offset + static_cast<float>(rng.Gaussian());
    }
  }
  return m;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

TEST(KnnGraphTest, EmptyInput) {
  Matrix m(0, 2);
  EXPECT_TRUE(KnnGraphComponents(m, {}, 3).empty());
  EXPECT_TRUE(LargestKnnComponent(m, {}, 3).empty());
}

TEST(KnnGraphTest, SeparatedBlobsFormTwoComponents) {
  Rng rng(1);
  const Matrix points = TwoBlobs(30, 20, 4, rng);
  const auto components = KnnGraphComponents(points, AllRows(50), 4);
  ASSERT_EQ(components.size(), 2u);
  std::vector<size_t> sizes = {components[0].size(), components[1].size()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 20u);
  EXPECT_EQ(sizes[1], 30u);
}

TEST(KnnGraphTest, ComponentsPartitionPositions) {
  Rng rng(2);
  const Matrix points = TwoBlobs(15, 15, 3, rng);
  const auto components = KnnGraphComponents(points, AllRows(30), 3);
  std::vector<bool> seen(30, false);
  for (const auto& comp : components) {
    for (size_t pos : comp) {
      EXPECT_LT(pos, 30u);
      EXPECT_FALSE(seen[pos]);
      seen[pos] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool b) { return b; }));
}

TEST(KnnGraphTest, LargestComponentPicksBiggerBlob) {
  Rng rng(3);
  const Matrix points = TwoBlobs(40, 10, 4, rng);
  const auto largest = LargestKnnComponent(points, AllRows(50), 4);
  EXPECT_EQ(largest.size(), 40u);
  for (size_t pos : largest) EXPECT_LT(pos, 40u);
}

TEST(KnnGraphTest, SingleNodeIsItsOwnComponent) {
  Matrix points(1, 2);
  const auto components = KnnGraphComponents(points, {0}, 3);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], (std::vector<size_t>{0}));
}

TEST(KnnGraphTest, KAtLeastClusterSizeMergesEverything) {
  Rng rng(4);
  const Matrix points = TwoBlobs(5, 5, 2, rng);
  // With k = 9, every node links to all others -> one component.
  const auto components = KnnGraphComponents(points, AllRows(10), 9);
  EXPECT_EQ(components.size(), 1u);
}

TEST(KnnGraphTest, MutualVariantIsSparser) {
  // A chain of points with one outlier bridging two clusters: the directed
  // union may connect them, the mutual variant should not.
  Rng rng(5);
  Matrix points = TwoBlobs(20, 20, 3, rng);
  // Move one point of blob A halfway toward blob B: its nearest neighbours
  // include blob B points, but blob B's mutual sets exclude it.
  for (size_t c = 0; c < 3; ++c) points(0, c) = 12.0f;
  const auto loose = KnnGraphComponents(points, AllRows(40), 3, false);
  const auto strict = KnnGraphComponents(points, AllRows(40), 3, true);
  EXPECT_GE(strict.size(), loose.size());
}

TEST(KnnGraphTest, SubsetRowsIndexPositionsNotRows) {
  Rng rng(6);
  const Matrix points = TwoBlobs(10, 10, 2, rng);
  const std::vector<size_t> rows = {12, 13, 14, 15};
  const auto components = KnnGraphComponents(points, rows, 2);
  for (const auto& comp : components) {
    for (size_t pos : comp) EXPECT_LT(pos, rows.size());
  }
}

TEST(KnnGraphTest, NoiseClusterDetectionScenario) {
  // The Topofilter use case: 40 "clean" points in one blob plus 10
  // "mislabeled" points that really live in another class's region.
  // The largest mutual-kNN component must be exactly the clean blob.
  Rng rng(7);
  const Matrix points = TwoBlobs(40, 10, 4, rng);
  const auto largest = LargestKnnComponent(points, AllRows(50), 4, true);
  EXPECT_GE(largest.size(), 30u);
  for (size_t pos : largest) EXPECT_LT(pos, 40u);
}

}  // namespace
}  // namespace enld
