#include "graph/union_find.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace enld {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_EQ(uf.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesSets) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_EQ(uf.SetSize(0), 2u);
  EXPECT_NE(uf.Find(0), uf.Find(2));
}

TEST(UnionFindTest, RedundantUnionReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, TransitiveMerge) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_EQ(uf.Find(0), uf.Find(3));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, ComponentsPartitionElements) {
  UnionFind uf(7);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(4, 5);
  auto components = uf.Components();
  EXPECT_EQ(components.size(), 4u);  // {0,1,2}, {3}, {4,5}, {6}.
  size_t total = 0;
  for (const auto& comp : components) total += comp.size();
  EXPECT_EQ(total, 7u);
}

TEST(UnionFindTest, RandomizedSizeInvariant) {
  Rng rng(1);
  const size_t n = 500;
  UnionFind uf(n);
  for (int i = 0; i < 1000; ++i) {
    uf.Union(rng.UniformInt(n), rng.UniformInt(n));
  }
  // Sum of distinct component sizes equals n.
  auto components = uf.Components();
  EXPECT_EQ(components.size(), uf.num_sets());
  size_t total = 0;
  for (const auto& comp : components) {
    total += comp.size();
    // Every member agrees on its set size.
    for (size_t member : comp) {
      EXPECT_EQ(uf.SetSize(member), comp.size());
    }
  }
  EXPECT_EQ(total, n);
}

TEST(UnionFindTest, SingleElement) {
  UnionFind uf(1);
  EXPECT_EQ(uf.Find(0), 0u);
  EXPECT_FALSE(uf.Union(0, 0));
}

}  // namespace
}  // namespace enld
