// Failure-injection tests: degenerate inputs every detector must survive —
// single-class arriving datasets, fully-noisy datasets, one-sample
// requests, classes absent from the inventory, extreme imbalance.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/confident_learning.h"
#include "baselines/default_detector.h"
#include "baselines/topofilter.h"
#include "enld/framework.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
    enld_ = new EnldFramework([] {
      EnldConfig config;
      config.general = TinyGeneralConfig();
      config.iterations = 2;
      config.steps_per_iteration = 3;
      return config;
    }());
    enld_->Setup(workload_->inventory);
  }
  static void TearDownTestSuite() {
    delete enld_;
    delete workload_;
    enld_ = nullptr;
    workload_ = nullptr;
  }

  static void ExpectPartition(const Dataset& d, const DetectionResult& r) {
    EXPECT_EQ(r.clean_indices.size() + r.noisy_indices.size(),
              d.size() - d.MissingLabelIndices().size());
  }

  static Workload* workload_;
  static EnldFramework* enld_;
};

Workload* RobustnessTest::workload_ = nullptr;
EnldFramework* RobustnessTest::enld_ = nullptr;

TEST_F(RobustnessTest, SingleClassArrivingDataset) {
  const Dataset& d0 = workload_->incremental[0];
  const int label = d0.ObservedLabelSet().front();
  const Dataset single = d0.Subset(d0.IndicesWithObservedLabel(label));
  ASSERT_FALSE(single.empty());
  ExpectPartition(single, enld_->Detect(single));
}

TEST_F(RobustnessTest, OneSampleRequest) {
  const Dataset one = workload_->incremental[0].Subset({0});
  const DetectionResult r = enld_->Detect(one);
  EXPECT_EQ(r.clean_indices.size() + r.noisy_indices.size(), 1u);
}

TEST_F(RobustnessTest, FullyNoisyDataset) {
  // Every observed label shifted by one: 100% noise.
  Dataset all_noisy = workload_->incremental[0];
  for (size_t i = 0; i < all_noisy.size(); ++i) {
    all_noisy.observed_labels[i] =
        (all_noisy.true_labels[i] + 1) % all_noisy.num_classes;
  }
  const DetectionResult r = enld_->Detect(all_noisy);
  ExpectPartition(all_noisy, r);
  const DetectionMetrics m = EvaluateDetection(all_noisy, r.noisy_indices);
  // Precision is trivially 1; most samples should be flagged.
  EXPECT_GT(m.recall, 0.5);
}

TEST_F(RobustnessTest, FullyCleanDataset) {
  Dataset clean = workload_->incremental[0];
  clean.observed_labels = clean.true_labels;
  const DetectionResult r = enld_->Detect(clean);
  ExpectPartition(clean, r);
  // Most samples should be kept (false-positive rate bounded).
  EXPECT_GT(r.clean_indices.size(), clean.size() / 2);
}

TEST_F(RobustnessTest, AllLabelsMissing) {
  Dataset unlabeled = workload_->incremental[0];
  for (auto& y : unlabeled.observed_labels) y = kMissingLabel;
  const DetectionResult r = enld_->Detect(unlabeled);
  EXPECT_TRUE(r.clean_indices.empty());
  EXPECT_TRUE(r.noisy_indices.empty());
  // Every sample still receives a recovered pseudo label.
  ASSERT_EQ(r.recovered_labels.size(), unlabeled.size());
  for (int label : r.recovered_labels) EXPECT_NE(label, kMissingLabel);
}

TEST_F(RobustnessTest, DuplicatedSamples) {
  // The same sample repeated: KD-trees and voting must not blow up.
  Dataset d = workload_->incremental[0];
  std::vector<size_t> rows(20, 3);  // Position 3, twenty times.
  const Dataset dupes = d.Subset(rows);
  ExpectPartition(dupes, enld_->Detect(dupes));
}

TEST_F(RobustnessTest, BaselinesSurviveSingleClassRequests) {
  const Dataset& d0 = workload_->incremental[0];
  const int label = d0.ObservedLabelSet().front();
  const Dataset single = d0.Subset(d0.IndicesWithObservedLabel(label));

  DefaultDetector fallback(TinyGeneralConfig());
  fallback.Setup(workload_->inventory);
  ExpectPartition(single, fallback.Detect(single));

  ConfidentLearningDetector cl(TinyGeneralConfig(),
                               ClVariant::kPruneByNoiseRate);
  cl.Setup(workload_->inventory);
  ExpectPartition(single, cl.Detect(single));

  TopofilterConfig topo_config;
  topo_config.train.epochs = 3;
  TopofilterDetector topo(topo_config);
  topo.Setup(workload_->inventory);
  ExpectPartition(single, topo.Detect(single));
}

TEST_F(RobustnessTest, RepeatDetectionsAreIndependent) {
  // Detecting the same dataset twice gives the same answer (the general
  // model is copied per request, never mutated).
  const Dataset& d = workload_->incremental[1];
  const auto first = enld_->Detect(d).noisy_indices;
  const auto second = enld_->Detect(d).noisy_indices;
  EXPECT_EQ(first, second);
}

TEST_F(RobustnessTest, ExtremelyImbalancedInventoryStillInitializes) {
  // 90% of the inventory from one class.
  WorkloadConfig config = TinyWorkloadConfig(0.1, 777);
  Workload skewed = BuildWorkload(config);
  std::vector<size_t> keep;
  for (size_t i = 0; i < skewed.inventory.size(); ++i) {
    if (skewed.inventory.true_labels[i] == 0 || i % 10 == 0) {
      keep.push_back(i);
    }
  }
  const Dataset imbalanced = skewed.inventory.Subset(keep);
  EnldConfig enld_config;
  enld_config.general = TinyGeneralConfig();
  enld_config.iterations = 2;
  EnldFramework framework(enld_config);
  framework.Setup(imbalanced);
  ExpectPartition(skewed.incremental[0],
                  framework.Detect(skewed.incremental[0]));
}

}  // namespace
}  // namespace enld
