#include "common/distance.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"

namespace enld {
namespace {

Matrix RandomPoints(size_t n, size_t dim, Rng& rng) {
  Matrix m(n, dim);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      m(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  return m;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

/// Restores whatever backend was active before the test.
class BackendGuard {
 public:
  BackendGuard() : saved_(DistanceKernelBackend()) {}
  ~BackendGuard() { SetDistanceKernelBackend(saved_.c_str()); }

 private:
  std::string saved_;
};

TEST(DistanceTest, PaddedLaneCount) {
  EXPECT_EQ(PaddedLaneCount(0), 0u);
  EXPECT_EQ(PaddedLaneCount(1), 8u);
  EXPECT_EQ(PaddedLaneCount(7), 8u);
  EXPECT_EQ(PaddedLaneCount(8), 8u);
  EXPECT_EQ(PaddedLaneCount(9), 16u);
  EXPECT_EQ(PaddedLaneCount(16), 16u);
}

TEST(DistanceTest, ScalarReference) {
  const float a[3] = {1.0f, 2.0f, 3.0f};
  const float b[3] = {4.0f, 6.0f, 3.0f};
  EXPECT_FLOAT_EQ(SquaredDistance(a, b, 3), 9.0f + 16.0f);
  EXPECT_FLOAT_EQ(SquaredDistance(a, b, 0), 0.0f);
}

TEST(DistanceTest, PackSoaBlockLayoutAndPadding) {
  Matrix points(3, 2);
  points(0, 0) = 1.0f;
  points(0, 1) = 2.0f;
  points(1, 0) = 3.0f;
  points(1, 1) = 4.0f;
  points(2, 0) = 5.0f;
  points(2, 1) = 6.0f;
  const std::vector<size_t> rows = {2, 0};
  const size_t stride = PaddedLaneCount(rows.size());
  std::vector<float> soa(stride * 2, -1.0f);
  PackSoaBlock(points.data(), 2, rows.data(), rows.size(), stride,
               soa.data());
  // Dimension-major: dim 0 lanes first, then dim 1; padding zero-filled.
  EXPECT_FLOAT_EQ(soa[0], 5.0f);
  EXPECT_FLOAT_EQ(soa[1], 1.0f);
  for (size_t i = 2; i < stride; ++i) EXPECT_FLOAT_EQ(soa[i], 0.0f);
  EXPECT_FLOAT_EQ(soa[stride + 0], 6.0f);
  EXPECT_FLOAT_EQ(soa[stride + 1], 2.0f);
  for (size_t i = 2; i < stride; ++i) {
    EXPECT_FLOAT_EQ(soa[stride + i], 0.0f);
  }
}

/// Every backend must reproduce the scalar reference bitwise, for counts
/// around the 8-lane boundaries and a dim that is not a lane multiple.
TEST(DistanceTest, BatchedMatchesScalarBitwiseOnAllBackends) {
  BackendGuard guard;
  Rng rng(3);
  for (const char* backend : {"generic", "avx2"}) {
    if (!SetDistanceKernelBackend(backend)) continue;  // CPU w/o AVX2.
    ASSERT_STREQ(DistanceKernelBackend(), backend);
    for (size_t count : {1u, 7u, 8u, 9u, 16u, 17u, 100u}) {
      for (size_t dim : {1u, 3u, 8u, 21u}) {
        const Matrix points = RandomPoints(count, dim, rng);
        const auto rows = AllRows(count);
        const size_t stride = PaddedLaneCount(count);
        std::vector<float> soa(stride * dim);
        PackSoaBlock(points.data(), dim, rows.data(), count, stride,
                     soa.data());
        std::vector<float> query(dim);
        for (auto& q : query) q = static_cast<float>(rng.Gaussian());
        std::vector<float> out(count, -1.0f);
        BatchedSquaredDistances(soa.data(), stride, count, dim, query.data(),
                                out.data());
        for (size_t i = 0; i < count; ++i) {
          const float ref =
              SquaredDistance(points.Row(i), query.data(), dim);
          uint32_t got_bits, ref_bits;
          std::memcpy(&got_bits, &out[i], sizeof(got_bits));
          std::memcpy(&ref_bits, &ref, sizeof(ref_bits));
          EXPECT_EQ(got_bits, ref_bits)
              << backend << " count=" << count << " dim=" << dim
              << " i=" << i;
        }
      }
    }
  }
}

/// The two backends must agree with each other bitwise on the same block —
/// the runtime-dispatch contract that keeps results identical across
/// machines with and without AVX2.
TEST(DistanceTest, BackendsAgreeBitwise) {
  BackendGuard guard;
  if (!SetDistanceKernelBackend("avx2")) {
    GTEST_SKIP() << "AVX2 unavailable on this CPU";
  }
  Rng rng(4);
  const size_t count = 333, dim = 40;
  const Matrix points = RandomPoints(count, dim, rng);
  const auto rows = AllRows(count);
  const size_t stride = PaddedLaneCount(count);
  std::vector<float> soa(stride * dim);
  PackSoaBlock(points.data(), dim, rows.data(), count, stride, soa.data());
  std::vector<float> query(dim);
  for (auto& q : query) q = static_cast<float>(rng.Gaussian());

  std::vector<float> avx2(count), generic(count);
  BatchedSquaredDistances(soa.data(), stride, count, dim, query.data(),
                          avx2.data());
  ASSERT_TRUE(SetDistanceKernelBackend("generic"));
  BatchedSquaredDistances(soa.data(), stride, count, dim, query.data(),
                          generic.data());
  EXPECT_EQ(std::memcmp(avx2.data(), generic.data(), count * sizeof(float)),
            0);
}

TEST(DistanceTest, ZeroCountIsANoOp) {
  float out = 42.0f;
  BatchedSquaredDistances(nullptr, 0, 0, 5, nullptr, &out);
  EXPECT_FLOAT_EQ(out, 42.0f);
}

TEST(DistanceTest, UnknownBackendRejected) {
  BackendGuard guard;
  const std::string before = DistanceKernelBackend();
  EXPECT_FALSE(SetDistanceKernelBackend("sse9"));
  EXPECT_FALSE(SetDistanceKernelBackend(nullptr));
  EXPECT_EQ(before, DistanceKernelBackend());
  EXPECT_TRUE(SetDistanceKernelBackend("auto"));
}

}  // namespace
}  // namespace enld
