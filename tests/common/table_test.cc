#include "common/table.h"

#include <gtest/gtest.h>

namespace enld {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"method", "f1"});
  table.AddRow({"ENLD", "0.9191"});
  table.AddRow({"Topofilter", "0.9021"});
  const std::string out = table.ToString("results");
  EXPECT_NE(out.find("== results =="), std::string::npos);
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("ENLD"), std::string::npos);
  EXPECT_NE(out.find("0.9021"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter table({"a", "b"});
  table.AddRow({"xxxxxx", "1"});
  table.AddRow({"y", "2"});
  const std::string out = table.ToString();
  // Both value cells in column b must start at the same offset.
  size_t line_start = out.find("xxxxxx");
  size_t one = out.find('1', line_start) - line_start;
  size_t line2_start = out.find("\ny", line_start) + 1;
  size_t two = out.find('2', line2_start) - line2_start;
  EXPECT_EQ(one, two);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(0.91913, 4), "0.9191");
  EXPECT_EQ(TablePrinter::Num(3.0, 1), "3.0");
  EXPECT_EQ(TablePrinter::Num(-1.25, 2), "-1.25");
}

TEST(TablePrinterTest, NoTitleOmitsHeaderLine) {
  TablePrinter table({"x"});
  table.AddRow({"1"});
  EXPECT_EQ(table.ToString().find("=="), std::string::npos);
}

}  // namespace
}  // namespace enld
