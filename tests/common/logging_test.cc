#include "common/logging.h"

#include <gtest/gtest.h>

namespace enld {
namespace {

/// Captures stderr for the duration of a scope.
class StderrCapture {
 public:
  StderrCapture() { ::testing::internal::CaptureStderr(); }
  std::string Release() {
    return ::testing::internal::GetCapturedStderr();
  }
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  SetLogLevel(LogLevel::kInfo);
  StderrCapture capture;
  ENLD_LOG(Info) << "hello " << 42;
  const std::string out = capture.Release();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  SetLogLevel(LogLevel::kWarning);
  StderrCapture capture;
  ENLD_LOG(Info) << "should not appear";
  ENLD_LOG(Debug) << "nor this";
  EXPECT_TRUE(capture.Release().empty());
}

TEST_F(LoggingTest, ErrorAlwaysEmits) {
  SetLogLevel(LogLevel::kError);
  StderrCapture capture;
  ENLD_LOG(Error) << "boom";
  const std::string out = capture.Release();
  EXPECT_NE(out.find("boom"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, LevelAccessors) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateExpensiveFormatting) {
  // The stream is only filled when enabled; verify nothing crashes and the
  // statement composes with side-effect-free expressions.
  SetLogLevel(LogLevel::kError);
  StderrCapture capture;
  for (int i = 0; i < 1000; ++i) {
    ENLD_LOG(Debug) << "iteration " << i << " of a tight loop";
  }
  EXPECT_TRUE(capture.Release().empty());
}

}  // namespace
}  // namespace enld
