#include "common/logging.h"

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace enld {
namespace {

/// Captures stderr for the duration of a scope.
class StderrCapture {
 public:
  StderrCapture() { ::testing::internal::CaptureStderr(); }
  std::string Release() {
    return ::testing::internal::GetCapturedStderr();
  }
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  SetLogLevel(LogLevel::kInfo);
  StderrCapture capture;
  ENLD_LOG(Info) << "hello " << 42;
  const std::string out = capture.Release();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  SetLogLevel(LogLevel::kWarning);
  StderrCapture capture;
  ENLD_LOG(Info) << "should not appear";
  ENLD_LOG(Debug) << "nor this";
  EXPECT_TRUE(capture.Release().empty());
}

TEST_F(LoggingTest, ErrorAlwaysEmits) {
  SetLogLevel(LogLevel::kError);
  StderrCapture capture;
  ENLD_LOG(Error) << "boom";
  const std::string out = capture.Release();
  EXPECT_NE(out.find("boom"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, LevelAccessors) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, HeaderCarriesThreadId) {
  SetLogLevel(LogLevel::kInfo);
  StderrCapture capture;
  ENLD_LOG(Info) << "tid check";
  const std::string out = capture.Release();
  // The header tags the emitting thread as " t<N> " between the level and
  // the file name, e.g. "[INFO t0 logging_test.cc:42]".
  const size_t tag = out.find(" t");
  ASSERT_NE(tag, std::string::npos);
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(out[tag + 2])));
}

TEST_F(LoggingTest, ConcurrentEmitsDoNotInterleave) {
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 50;
  StderrCapture capture;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        ENLD_LOG(Info) << "worker=" << t << " line=" << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string out = capture.Release();

  // Every emitted line must be whole: header, both fields, terminator —
  // no characters from another thread spliced in.
  std::istringstream lines(out);
  std::string line;
  int complete = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_NE(line.find("INFO"), std::string::npos) << line;
    EXPECT_NE(line.find("worker="), std::string::npos) << line;
    EXPECT_NE(line.find(" end"), std::string::npos) << line;
    ++complete;
  }
  EXPECT_EQ(complete, kThreads * kLinesPerThread);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateExpensiveFormatting) {
  // The stream is only filled when enabled; verify nothing crashes and the
  // statement composes with side-effect-free expressions.
  SetLogLevel(LogLevel::kError);
  StderrCapture capture;
  for (int i = 0; i < 1000; ++i) {
    ENLD_LOG(Debug) << "iteration " << i << " of a tight loop";
  }
  EXPECT_TRUE(capture.Release().empty());
}

}  // namespace
}  // namespace enld
