#include "common/status.h"

#include <gtest/gtest.h>

namespace enld {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("bad k"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("no class"), StatusCode::kNotFound, "NotFound"},
      {Status::FailedPrecondition("no setup"),
       StatusCode::kFailedPrecondition, "FailedPrecondition"},
      {Status::OutOfRange("idx"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Internal("bug"), StatusCode::kInternal, "Internal"},
      {Status::Unavailable("flaky disk"), StatusCode::kUnavailable,
       "Unavailable"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(StatusTest, ToStringWithEmptyMessage) {
  Status s(StatusCode::kInternal, "");
  EXPECT_EQ(s.ToString(), "Internal");
}

Status Inner(bool fail) {
  if (fail) return Status::InvalidArgument("inner");
  return Status::OK();
}

Status Outer(bool fail) {
  ENLD_RETURN_IF_ERROR(Inner(fail));
  return Status::NotFound("outer ran");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Outer(true).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Outer(false).code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  StatusOr<NoDefault> ok_value(NoDefault(7));
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(ok_value->value, 7);
  StatusOr<NoDefault> err(Status::Internal("nope"));
  EXPECT_FALSE(err.ok());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string(1000, 'x'));
  ASSERT_TRUE(v.ok());
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 1000u);
}

}  // namespace
}  // namespace enld
