#include "common/faults.h"

#include <string>
#include <vector>

#include "common/status.h"
#include "common/telemetry/metrics.h"
#include "gtest/gtest.h"

namespace enld {
namespace {

/// Every test arms and clears the process-wide registry, so they share a
/// fixture that guarantees a clean slate on both sides.
class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::Clear(); }
  void TearDown() override { faults::Clear(); }
};

std::vector<bool> FireSequence(const std::string& site, size_t checks) {
  std::vector<bool> fired;
  fired.reserve(checks);
  for (size_t i = 0; i < checks; ++i) {
    fired.push_back(faults::ShouldFail(site));
  }
  return fired;
}

TEST_F(FaultsTest, DisabledByDefault) {
  EXPECT_FALSE(faults::Enabled());
  EXPECT_FALSE(faults::ShouldFail("store/read_file"));
  EXPECT_TRUE(faults::Check("store/read_file").ok());
  EXPECT_EQ(faults::TotalFires(), 0u);
  EXPECT_TRUE(faults::Stats().empty());
}

TEST_F(FaultsTest, CertainFaultFiresAndReportsSite) {
  faults::ArmSite("store/read_file", 1.0, /*max_fires=*/1);
  ASSERT_TRUE(faults::Enabled());
  const Status status = faults::Check("store/read_file");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("store/read_file"), std::string::npos);
}

TEST_F(FaultsTest, UnarmedSiteNeverFiresWhileAnotherIsArmed) {
  faults::ArmSite("store/write_file", 1.0);
  EXPECT_FALSE(faults::ShouldFail("store/read_file"));
  EXPECT_TRUE(faults::Check("store/read_file").ok());
}

TEST_F(FaultsTest, FireSequenceIsDeterministicForSiteAndSeed) {
  ASSERT_TRUE(faults::Configure("store/read_file:0.3", /*seed=*/42).ok());
  const std::vector<bool> first = FireSequence("store/read_file", 200);
  ASSERT_TRUE(faults::Configure("store/read_file:0.3", /*seed=*/42).ok());
  const std::vector<bool> second = FireSequence("store/read_file", 200);
  EXPECT_EQ(first, second);

  ASSERT_TRUE(faults::Configure("store/read_file:0.3", /*seed=*/43).ok());
  const std::vector<bool> other_seed = FireSequence("store/read_file", 200);
  EXPECT_NE(first, other_seed);
}

TEST_F(FaultsTest, DistinctSitesDrawIndependentSequences) {
  ASSERT_TRUE(
      faults::Configure("store/read_file:0.5,store/write_file:0.5", 7).ok());
  const std::vector<bool> reads = FireSequence("store/read_file", 200);
  const std::vector<bool> writes = FireSequence("store/write_file", 200);
  EXPECT_NE(reads, writes);
}

TEST_F(FaultsTest, MaxFiresStopsInjection) {
  faults::ArmSite("store/fsync", 1.0, /*max_fires=*/2, /*burst_limit=*/0);
  EXPECT_TRUE(faults::ShouldFail("store/fsync"));
  EXPECT_TRUE(faults::ShouldFail("store/fsync"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(faults::ShouldFail("store/fsync"));
  }
  EXPECT_EQ(faults::TotalFires(), 2u);
}

TEST_F(FaultsTest, BurstLimitForcesASuccessAfterConsecutiveFires) {
  faults::ArmSite("store/rename", 1.0, /*max_fires=*/0, /*burst_limit=*/3);
  // p=1.0 would fire forever; the burst limit inserts a success after
  // every 3 consecutive fires, which is what keeps retry loops convergent.
  const std::vector<bool> fired = FireSequence("store/rename", 8);
  const std::vector<bool> expected = {true, true, true, false,
                                      true, true, true, false};
  EXPECT_EQ(fired, expected);
}

TEST_F(FaultsTest, SkipChecksDelaysFirstEligibleCheck) {
  faults::ArmSite("snapshot/publish", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0, /*skip_checks=*/3);
  EXPECT_FALSE(faults::ShouldFail("snapshot/publish"));
  EXPECT_FALSE(faults::ShouldFail("snapshot/publish"));
  EXPECT_FALSE(faults::ShouldFail("snapshot/publish"));
  EXPECT_TRUE(faults::ShouldFail("snapshot/publish"));
  EXPECT_FALSE(faults::ShouldFail("snapshot/publish"));
}

TEST_F(FaultsTest, StatsReportCountersSortedBySite) {
  ASSERT_TRUE(
      faults::Configure("b/site:1.0:1,a/site:0.0", /*seed=*/1).ok());
  (void)faults::ShouldFail("b/site");
  (void)faults::ShouldFail("b/site");
  (void)faults::ShouldFail("a/site");
  const std::vector<faults::FaultSiteStats> stats = faults::Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].site, "a/site");
  EXPECT_EQ(stats[0].checks, 1u);
  EXPECT_EQ(stats[0].fires, 0u);
  EXPECT_EQ(stats[1].site, "b/site");
  EXPECT_EQ(stats[1].checks, 2u);
  EXPECT_EQ(stats[1].fires, 1u);
  EXPECT_EQ(stats[1].max_fires, 1u);
  EXPECT_EQ(faults::TotalFires(), 1u);
}

TEST_F(FaultsTest, ClearDisarmsEverything) {
  faults::ArmSite("store/read_file", 1.0);
  ASSERT_TRUE(faults::Enabled());
  faults::Clear();
  EXPECT_FALSE(faults::Enabled());
  EXPECT_FALSE(faults::ShouldFail("store/read_file"));
  EXPECT_EQ(faults::TotalFires(), 0u);
}

TEST_F(FaultsTest, ConfigureReplacesPreviousConfiguration) {
  ASSERT_TRUE(faults::Configure("store/read_file:1.0", 0).ok());
  ASSERT_TRUE(faults::Configure("store/write_file:1.0", 0).ok());
  EXPECT_FALSE(faults::ShouldFail("store/read_file"));
  EXPECT_TRUE(faults::ShouldFail("store/write_file"));
}

TEST_F(FaultsTest, EmptySpecClears) {
  faults::ArmSite("store/read_file", 1.0);
  ASSERT_TRUE(faults::Configure("", 0).ok());
  EXPECT_FALSE(faults::Enabled());
}

TEST_F(FaultsTest, ConfigureParsesAllFields) {
  ASSERT_TRUE(faults::Configure("store/rename:0.25:7:2:5", 0).ok());
  const std::vector<faults::FaultSiteStats> stats = faults::Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, "store/rename");
  EXPECT_DOUBLE_EQ(stats[0].probability, 0.25);
  EXPECT_EQ(stats[0].max_fires, 7u);
  EXPECT_EQ(stats[0].burst_limit, 2u);
  EXPECT_EQ(stats[0].skip_checks, 5u);
}

TEST_F(FaultsTest, ConfigureRejectsMalformedSpecs) {
  const char* bad[] = {
      "no-probability",          // missing :prob
      "site:",                   // empty probability
      ":0.5",                    // empty site name
      "site:1.5",                // probability out of [0,1]
      "site:-0.1",               // negative probability
      "site:abc",                // non-numeric probability
      "site:0.5:x",              // non-numeric max_fires
      "site:0.5:1:1:1:9",        // too many fields
  };
  for (const char* spec : bad) {
    const Status status = faults::Configure(spec, 0);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "spec accepted: " << spec;
    EXPECT_FALSE(faults::Enabled()) << "bad spec armed sites: " << spec;
  }
}

TEST_F(FaultsTest, FiresAreCountedInTelemetry) {
  telemetry::Counter* all =
      telemetry::MetricsRegistry::Global().GetCounter("faults/fired");
  telemetry::Counter* site = telemetry::MetricsRegistry::Global().GetCounter(
      "faults/store/read_file");
  const uint64_t all_before = all->Value();
  const uint64_t site_before = site->Value();
  faults::ArmSite("store/read_file", 1.0, /*max_fires=*/2,
                  /*burst_limit=*/0);
  (void)faults::ShouldFail("store/read_file");
  (void)faults::ShouldFail("store/read_file");
  (void)faults::ShouldFail("store/read_file");
  EXPECT_EQ(all->Value() - all_before, 2u);
  EXPECT_EQ(site->Value() - site_before, 2u);
}

}  // namespace
}  // namespace enld
