#include "common/matrix.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"

namespace enld {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  return m;
}

/// Reference O(n^3) multiply used to validate the production kernels.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float sum = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      out(i, j) = sum;
    }
  }
  return out;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FALSE(m.empty());
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(m.At(r, c), 2.5f);
  }
  m.Fill(-1.0f);
  EXPECT_EQ(m(2, 3), -1.0f);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, RowAccess) {
  Matrix m(2, 3);
  m(1, 0) = 1.0f;
  m(1, 2) = 3.0f;
  const float* row = m.Row(1);
  EXPECT_EQ(row[0], 1.0f);
  EXPECT_EQ(row[2], 3.0f);
  const auto vec = m.RowVector(1);
  EXPECT_EQ(vec, (std::vector<float>{1.0f, 0.0f, 3.0f}));
}

TEST(MatrixTest, SelectRows) {
  Matrix m(4, 2);
  for (size_t r = 0; r < 4; ++r) m(r, 0) = static_cast<float>(r);
  const Matrix sel = m.SelectRows({3, 1, 1});
  ASSERT_EQ(sel.rows(), 3u);
  EXPECT_EQ(sel(0, 0), 3.0f);
  EXPECT_EQ(sel(1, 0), 1.0f);
  EXPECT_EQ(sel(2, 0), 1.0f);
}

TEST(MatrixTest, Reset) {
  Matrix m(2, 2, 9.0f);
  m.Reset(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, AddAndAddScaledAndScale) {
  Matrix a(2, 2, 1.0f);
  Matrix b(2, 2, 2.0f);
  a.Add(b);
  EXPECT_EQ(a(0, 0), 3.0f);
  a.AddScaled(b, 0.5f);
  EXPECT_EQ(a(1, 1), 4.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a(0, 1), 8.0f);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3);
  m(0, 1) = 5.0f;
  m(1, 2) = 7.0f;
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(1, 0), 5.0f);
  EXPECT_EQ(t(2, 1), 7.0f);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(m.FrobeniusNorm(), 5.0f);
}

TEST(MatrixTest, RowDistanceSquared) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f;
  m(0, 1) = 2.0f;
  const float query[2] = {4.0f, 6.0f};
  EXPECT_FLOAT_EQ(m.RowDistanceSquared(0, query), 9.0f + 16.0f);
}

TEST(MatMulTest, MatchesNaiveReference) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t m = 1 + rng.UniformInt(8);
    const size_t k = 1 + rng.UniformInt(8);
    const size_t n = 1 + rng.UniformInt(8);
    const Matrix a = RandomMatrix(m, k, rng);
    const Matrix b = RandomMatrix(k, n, rng);
    Matrix out;
    MatMul(a, b, &out);
    ExpectMatrixNear(out, NaiveMatMul(a, b));
  }
}

TEST(MatMulTest, BtMatchesExplicitTranspose) {
  Rng rng(2);
  const Matrix a = RandomMatrix(4, 6, rng);
  const Matrix b = RandomMatrix(5, 6, rng);
  Matrix out;
  MatMulBt(a, b, &out);
  ExpectMatrixNear(out, NaiveMatMul(a, b.Transposed()));
}

TEST(MatMulTest, AtMatchesExplicitTranspose) {
  Rng rng(3);
  const Matrix a = RandomMatrix(6, 4, rng);
  const Matrix b = RandomMatrix(6, 5, rng);
  Matrix out;
  MatMulAt(a, b, &out);
  ExpectMatrixNear(out, NaiveMatMul(a.Transposed(), b));
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(4);
  const Matrix a = RandomMatrix(3, 3, rng);
  Matrix eye(3, 3);
  for (size_t i = 0; i < 3; ++i) eye(i, i) = 1.0f;
  Matrix out;
  MatMul(a, eye, &out);
  ExpectMatrixNear(out, a);
}

// Regression for the zero-skip fast path: `if (av == 0.0f) continue;`
// dropped 0 * inf and 0 * nan contributions, so a poisoned operand could
// silently vanish from the product.
TEST(MatMulTest, ZeroTimesNonFinitePropagates) {
  Matrix a(2, 2, 1.0f);
  a(0, 1) = 0.0f;
  Matrix b(2, 2, 1.0f);
  b(1, 0) = std::numeric_limits<float>::infinity();
  b(1, 1) = std::numeric_limits<float>::quiet_NaN();
  Matrix out;
  MatMul(a, b, &out);
  EXPECT_TRUE(std::isnan(out(0, 0)));  // 1*1 + 0*inf.
  EXPECT_TRUE(std::isnan(out(0, 1)));  // 1*1 + 0*nan.
  EXPECT_TRUE(std::isinf(out(1, 0)));  // 1*1 + 1*inf.
  EXPECT_TRUE(std::isnan(out(1, 1)));  // 1*1 + 1*nan.
}

TEST(MatMulTest, NonFinitePropagatesIdenticallyInParallelPath) {
  // 64*32*32 = 65536 crosses the parallel-dispatch threshold, so the
  // 4-thread run takes the ParallelFor path; 1 thread is the sequential
  // path. Outputs must match bitwise, including every nan/inf cell seeded
  // through a zero multiplier.
  Rng rng(7);
  Matrix a = RandomMatrix(64, 32, rng);
  Matrix b = RandomMatrix(32, 32, rng);
  a(3, 5) = 0.0f;
  a(60, 9) = 0.0f;
  b(5, 0) = std::numeric_limits<float>::infinity();
  b(9, 2) = std::numeric_limits<float>::quiet_NaN();
  Matrix seq;
  SetParallelThreads(1);
  MatMul(a, b, &seq);
  SetParallelThreads(4);
  Matrix par;
  MatMul(a, b, &par);
  SetParallelThreads(0);
  EXPECT_TRUE(std::isnan(seq(3, 0)));   // includes the 0 * inf term.
  EXPECT_TRUE(std::isnan(seq(60, 2)));  // includes the 0 * nan term.
  ASSERT_EQ(seq.rows(), par.rows());
  ASSERT_EQ(seq.cols(), par.cols());
  for (size_t r = 0; r < seq.rows(); ++r) {
    for (size_t c = 0; c < seq.cols(); ++c) {
      uint32_t sbits, pbits;
      std::memcpy(&sbits, &seq(r, c), sizeof(sbits));
      std::memcpy(&pbits, &par(r, c), sizeof(pbits));
      EXPECT_EQ(sbits, pbits) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(MatrixOpsTest, AddRowBroadcast) {
  Matrix m(2, 3, 1.0f);
  AddRowBroadcast(&m, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m(0, 0), 2.0f);
  EXPECT_EQ(m(1, 2), 4.0f);
}

TEST(MatrixOpsTest, ColumnSums) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f;
  m(1, 0) = 2.0f;
  m(0, 1) = -1.0f;
  const auto sums = ColumnSums(m);
  EXPECT_FLOAT_EQ(sums[0], 3.0f);
  EXPECT_FLOAT_EQ(sums[1], -1.0f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(5);
  const Matrix logits = RandomMatrix(10, 7, rng);
  Matrix probs;
  SoftmaxRows(logits, &probs);
  for (size_t r = 0; r < probs.rows(); ++r) {
    float sum = 0.0f;
    for (size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GT(probs(r, c), 0.0f);
      sum += probs(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableWithLargeLogits) {
  Matrix logits(1, 3);
  logits(0, 0) = 1000.0f;
  logits(0, 1) = 999.0f;
  logits(0, 2) = -1000.0f;
  Matrix probs;
  SoftmaxRows(logits, &probs);
  EXPECT_FALSE(std::isnan(probs(0, 0)));
  EXPECT_GT(probs(0, 0), probs(0, 1));
  EXPECT_NEAR(probs(0, 2), 0.0f, 1e-6f);
}

TEST(SoftmaxTest, PreservesArgMax) {
  Rng rng(6);
  const Matrix logits = RandomMatrix(20, 5, rng);
  Matrix probs;
  SoftmaxRows(logits, &probs);
  for (size_t r = 0; r < logits.rows(); ++r) {
    EXPECT_EQ(ArgMaxRow(logits, r), ArgMaxRow(probs, r));
  }
}

TEST(ArgMaxTest, PicksFirstMaximum) {
  Matrix m(1, 4);
  m(0, 1) = 5.0f;
  m(0, 3) = 5.0f;
  EXPECT_EQ(ArgMaxRow(m, 0), 1u);
}

}  // namespace
}  // namespace enld
