#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace enld {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUInt64(), b.NextUInt64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUInt64() == b.NextUInt64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, CopyReproducesStream) {
  Rng a(5);
  a.NextUInt64();
  Rng b = a;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextUInt64(), b.NextUInt64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(19);
  const size_t buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(buckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, DiscreteMatchesWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, DiscreteSingleOption) {
  Rng rng(41);
  EXPECT_EQ(rng.Discrete({2.0}), 0u);
}

TEST(RngTest, BetaSymmetricInUnitInterval) {
  Rng rng(43);
  for (double alpha : {0.2, 1.0, 5.0}) {
    for (int i = 0; i < 2000; ++i) {
      const double b = rng.BetaSymmetric(alpha);
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 1.0);
    }
  }
}

TEST(RngTest, BetaSymmetricMeanIsHalf) {
  Rng rng(47);
  for (double alpha : {0.2, 2.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.BetaSymmetric(alpha);
    EXPECT_NEAR(sum / n, 0.5, 0.02) << "alpha=" << alpha;
  }
}

TEST(RngTest, BetaLowAlphaConcentratesAtEndpoints) {
  // Beta(0.2, 0.2) is U-shaped: most mass near 0 and 1 — the property
  // mixup relies on (mostly "almost one of the two samples").
  Rng rng(53);
  int extreme = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double b = rng.BetaSymmetric(0.2);
    if (b < 0.1 || b > 0.9) ++extreme;
  }
  EXPECT_GT(static_cast<double>(extreme) / n, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // Astronomically unlikely to match.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>({5}));
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(67);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(71);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(73);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(79);
  Rng forked = a.Fork();
  // The fork and the parent should not produce identical streams.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUInt64() == forked.NextUInt64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngSeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweepTest, UniformIntNeverExceedsBound) {
  Rng rng(GetParam());
  for (size_t n : {1u, 2u, 3u, 17u, 1000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(n), n);
  }
}

TEST_P(RngSeedSweepTest, DiscreteOnlyReturnsPositiveWeightIndices) {
  Rng rng(GetParam());
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0, 0.0};
  for (int i = 0; i < 500; ++i) {
    const size_t pick = rng.Discrete(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweepTest,
                         ::testing::Values(0, 1, 42, 0xdeadbeef,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace enld
