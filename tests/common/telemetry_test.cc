#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/phase_timing.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/report.h"
#include "common/telemetry/trace.h"

namespace enld {
namespace telemetry {
namespace {

/// Every test starts and ends with clean global telemetry state so tests
/// are order-independent.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetTelemetry(); }
  void TearDown() override {
    ResetTelemetry();
    SetParallelThreads(0);
  }
};

// ---------------------------------------------------------------------------
// Metrics registry.

TEST_F(TelemetryTest, CounterAddAndReset) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 6u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(TelemetryTest, RegistryReturnsStablePointers) {
  auto& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test/stable");
  Counter* b = registry.GetCounter("test/stable");
  EXPECT_EQ(a, b);
  a->Add(3);
  // Reset zeroes values but keeps the registration and the pointer valid.
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("test/stable"), a);
  EXPECT_EQ(a->Value(), 0u);
}

TEST_F(TelemetryTest, HistogramBucketSemantics) {
  auto& registry = MetricsRegistry::Global();
  Histogram* hist =
      registry.GetHistogram("test/hist", {1.0, 2.0, 3.0});
  hist->Observe(0.5);   // First bucket (<= 1.0).
  hist->Observe(1.0);   // Boundary lands in its own bucket (le-semantics).
  hist->Observe(2.5);   // Third bucket (<= 3.0).
  hist->Observe(99.0);  // Overflow bucket.
  EXPECT_EQ(hist->BucketCount(0), 2u);
  EXPECT_EQ(hist->BucketCount(1), 0u);
  EXPECT_EQ(hist->BucketCount(2), 1u);
  EXPECT_EQ(hist->BucketCount(3), 1u);
  EXPECT_EQ(hist->TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(hist->Sum(), 0.5 + 1.0 + 2.5 + 99.0);
}

TEST_F(TelemetryTest, HistogramDropsInvalidObservations) {
  auto& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("test/invalid", {1.0});
  Counter* invalid = registry.GetCounter("telemetry/invalid_observations");
  const uint64_t before = invalid->Value();
  hist->Observe(std::nan(""));
  hist->Observe(-0.25);
  hist->Observe(0.5);  // valid, lands in the first bucket
  EXPECT_EQ(hist->TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(hist->Sum(), 0.5);
  EXPECT_EQ(invalid->Value(), before + 2);
}

TEST_F(TelemetryTest, LogScaleBucketsAreAscendingAndCapped) {
  const std::vector<double> bounds = LogScaleBuckets();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-5);
  EXPECT_DOUBLE_EQ(bounds.back(), 128.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
  // A ladder whose geometric progression stops short of max_bound gets
  // max_bound appended as the final edge.
  const std::vector<double> custom = LogScaleBuckets(1.0, 10.0, 3.0);
  EXPECT_EQ(custom, (std::vector<double>{1.0, 3.0, 9.0, 10.0}));
}

TEST_F(TelemetryTest, HistogramQuantileOfEmptyHistogramIsZero) {
  HistogramSnapshot empty;
  empty.upper_bounds = {1.0, 2.0};
  empty.bucket_counts = {0, 0, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(empty, 0.5), 0.0);
}

TEST_F(TelemetryTest, HistogramQuantileInterpolatesWithinBuckets) {
  HistogramSnapshot snap;
  snap.upper_bounds = {1.0, 2.0, 4.0};
  snap.bucket_counts = {2, 1, 1, 0};
  snap.count = 4;
  // rank 1 of 2 in the first bucket: halfway between 0 and its edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.25), 0.5);
  // rank 2 exhausts the first bucket: exactly the bucket boundary.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 1.0);
  // The maximum lands at the last finite edge.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 1.0), 4.0);
  // Quantiles are clamped into [0, 1].
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, -3.0),
                   HistogramQuantile(snap, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 7.0),
                   HistogramQuantile(snap, 1.0));
}

TEST_F(TelemetryTest, HistogramQuantileOverflowBucketStaysBounded) {
  HistogramSnapshot snap;
  snap.upper_bounds = {1.0, 2.0, 4.0};
  snap.bucket_counts = {0, 0, 0, 5};
  snap.count = 5;
  // Every observation overflowed: no upper edge to interpolate toward, so
  // the readout pins to the last finite bound instead of inventing one.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.99), 4.0);
}

// Quantiles must read deterministically off the merged snapshot even when
// the observations landed on different counter shards.
TEST_F(TelemetryTest, HistogramQuantileMergesAcrossShards) {
  SetParallelThreads(8);
  auto& registry = MetricsRegistry::Global();
  Histogram* hist = registry.GetHistogram("test/quantile", {1.0, 2.0, 3.0});
  constexpr size_t kItems = 4000;
  ParallelFor(0, kItems, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hist->Observe(0.5 + static_cast<double>(i % 4));  // 0.5, 1.5, 2.5, 3.5
    }
  });
  const HistogramSnapshot snap =
      registry.Snapshot().histograms.at("test/quantile");
  ASSERT_EQ(snap.count, kItems);
  const double p50 = HistogramQuantile(snap, 0.5);
  const double p90 = HistogramQuantile(snap, 0.9);
  const double p99 = HistogramQuantile(snap, 0.99);
  EXPECT_DOUBLE_EQ(p50, 2.0);  // rank 2000 exhausts the (1, 2] bucket
  EXPECT_DOUBLE_EQ(p99, 3.0);  // overflow bucket pins to the last edge
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST_F(TelemetryTest, SeriesPreservesAppendOrder) {
  Series* series = MetricsRegistry::Global().GetSeries("test/series");
  series->Append(3.0);
  series->Append(1.0);
  series->Append(2.0);
  EXPECT_EQ(series->Values(), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST_F(TelemetryTest, SnapshotCoversAllMetricKinds) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test/c")->Add(7);
  registry.GetGauge("test/g")->Set(2.5);
  registry.GetHistogram("test/h", {10.0})->Observe(4.0);
  registry.GetSeries("test/s")->Append(1.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test/c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test/g"), 2.5);
  EXPECT_EQ(snap.histograms.at("test/h").count, 1u);
  EXPECT_EQ(snap.series.at("test/s").size(), 1u);
}

// Hammer one counter from every worker of a real ParallelFor: the sharded
// atomics must lose no increments regardless of interleaving.
TEST_F(TelemetryTest, CounterIsExactUnderParallelFor) {
  SetParallelThreads(8);
  Counter* counter = MetricsRegistry::Global().GetCounter("test/parallel");
  Histogram* hist =
      MetricsRegistry::Global().GetHistogram("test/parallel_hist", {0.5});
  constexpr size_t kItems = 100000;
  ParallelFor(0, kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter->Increment();
      hist->Observe(i % 2 == 0 ? 0.0 : 1.0);
    }
  });
  EXPECT_EQ(counter->Value(), kItems);
  EXPECT_EQ(hist->TotalCount(), kItems);
  EXPECT_EQ(hist->BucketCount(0), kItems / 2);
  EXPECT_EQ(hist->BucketCount(1), kItems / 2);
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST_F(TelemetryTest, SpansNestAndMergeByName) {
  for (int i = 0; i < 3; ++i) {
    ENLD_TRACE_SPAN("outer");
    {
      ENLD_TRACE_SPAN("inner");
    }
    {
      ENLD_TRACE_SPAN("inner");
    }
  }
  const SpanSnapshot root = TraceTree::Global().Snapshot();
  EXPECT_EQ(root.name, "run");
  ASSERT_EQ(root.children.size(), 1u);
  const SpanSnapshot& outer = root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 3u);
  // Both "inner" entries per outer iteration merged into one child node.
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].count, 6u);
  EXPECT_GE(outer.total_seconds, outer.children[0].total_seconds);
  EXPECT_EQ(root.Depth(), 2u);
  EXPECT_NE(root.Child("outer"), nullptr);
  EXPECT_EQ(root.Child("missing"), nullptr);
}

TEST_F(TelemetryTest, SpanStatsAccumulate) {
  {
    ScopedSpan span("stats");
    span.AddStat("items", 4.0);
    span.AddStat("items", 2.0);
    CurrentSpanStat("ambient", 1.0);
  }
  // No active span: the stat is dropped, not attached anywhere.
  CurrentSpanStat("ambient", 100.0);
  const SpanSnapshot root = TraceTree::Global().Snapshot();
  const SpanSnapshot* span = root.Child("stats");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->stats.at("items"), 6.0);
  EXPECT_DOUBLE_EQ(span->stats.at("ambient"), 1.0);
}

TEST_F(TelemetryTest, SpanOnThreadWithoutParentAttachesToRoot) {
  {
    ENLD_TRACE_SPAN("parent");
    std::thread other([] {
      ENLD_TRACE_SPAN("orphan");
    });
    other.join();
  }
  const SpanSnapshot root = TraceTree::Global().Snapshot();
  // "orphan" ran on a thread with no active span: root-level, not nested.
  EXPECT_NE(root.Child("orphan"), nullptr);
  ASSERT_NE(root.Child("parent"), nullptr);
  EXPECT_EQ(root.Child("parent")->Child("orphan"), nullptr);
}

// ---------------------------------------------------------------------------
// PhaseTimings compatibility shim.

TEST_F(TelemetryTest, PhaseTimingsFlattensByNameAcrossPaths) {
  {
    ENLD_TRACE_SPAN("detect");
    {
      ENLD_TRACE_SPAN("shared");
    }
    {
      ENLD_TRACE_SPAN("detect/iteration");
      ENLD_TRACE_SPAN("shared");
    }
  }
  PhaseTimings::Global().Add("flat_phase", 0.25);
  const auto snapshot = PhaseTimings::Global().Snapshot();
  size_t shared_entries = 0;
  bool saw_flat = false;
  for (const auto& [name, seconds] : snapshot) {
    if (name == "shared") ++shared_entries;
    if (name == "flat_phase") {
      saw_flat = true;
      EXPECT_DOUBLE_EQ(seconds, 0.25);
    }
  }
  // One entry per *name*, even though "shared" occurs at two tree paths.
  EXPECT_EQ(shared_entries, 1u);
  EXPECT_TRUE(saw_flat);
}

// Regression test: concurrent first use of one phase name used to create
// duplicate entries in the flat registry. The tree shim find-or-creates
// under the lock, so exactly one entry must survive with the full sum.
TEST_F(TelemetryTest, PhaseTimingsConcurrentFirstUseDoesNotDuplicate) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        PhaseTimings::Global().Add("racy_phase", 0.001);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto snapshot = PhaseTimings::Global().Snapshot();
  size_t entries = 0;
  double total = 0.0;
  for (const auto& [name, seconds] : snapshot) {
    if (name == "racy_phase") {
      ++entries;
      total = seconds;
    }
  }
  EXPECT_EQ(entries, 1u);
  EXPECT_NEAR(total, kThreads * kAddsPerThread * 0.001, 1e-9);
}

// ---------------------------------------------------------------------------
// Run reports.

TEST_F(TelemetryTest, JsonReportContainsAllSections) {
  {
    ENLD_TRACE_SPAN("phase");
    ENLD_TRACE_SPAN("phase/sub");
  }
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("area/count")->Add(42);
  registry.GetGauge("area/gauge")->Set(1.5);
  registry.GetHistogram("area/hist", {1.0, 2.0})->Observe(1.5);
  registry.GetSeries("area/series")->Append(7.0);

  RunReport report = CaptureRunReport();
  report.method = "TestMethod";
  report.noise_rate = 0.2;
  report.quality["f1_avg"] = 0.93;

  const std::string json = RunReportToJson(report);
  EXPECT_NE(json.find("\"schema\":\"enld-telemetry-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"TestMethod\""), std::string::npos);
  EXPECT_NE(json.find("\"phase/sub\""), std::string::npos);
  EXPECT_NE(json.find("\"area/count\":42"), std::string::npos);
  EXPECT_NE(json.find("\"area/gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"area/hist\""), std::string::npos);
  EXPECT_NE(json.find("\"area/series\""), std::string::npos);
  EXPECT_NE(json.find("\"f1_avg\""), std::string::npos);
}

TEST_F(TelemetryTest, JsonSerializationIsDeterministic) {
  auto build = [] {
    ResetTelemetry();
    {
      ENLD_TRACE_SPAN("alpha");
      ENLD_TRACE_SPAN("beta");
    }
    auto& registry = MetricsRegistry::Global();
    registry.GetCounter("z/last")->Add(1);
    registry.GetCounter("a/first")->Add(2);
    RunReport report = CaptureRunReport();
    report.method = "Det";
    // Zero out wall-clock so the two captures compare equal.
    std::function<void(SpanSnapshot&)> strip = [&](SpanSnapshot& span) {
      span.total_seconds = 0.0;
      for (SpanSnapshot& child : span.children) strip(child);
    };
    strip(report.spans);
    return RunReportToJson(report);
  };
  EXPECT_EQ(build(), build());
}

TEST_F(TelemetryTest, CsvReportSelectedByExtension) {
  MetricsRegistry::Global().GetCounter("area/count")->Add(3);
  {
    ENLD_TRACE_SPAN("phase");
  }
  const RunReport report = CaptureRunReport();
  const std::string csv = RunReportToCsv(report);
  EXPECT_NE(csv.find("counter,area/count,3"), std::string::npos);
  EXPECT_NE(csv.find("phase"), std::string::npos);

  const std::string json_path = ::testing::TempDir() + "/telemetry.json";
  const std::string csv_path = ::testing::TempDir() + "/telemetry.csv";
  ASSERT_TRUE(WriteRunReport(report, json_path).ok());
  ASSERT_TRUE(WriteRunReport(report, csv_path).ok());
}

TEST_F(TelemetryTest, TelemetryOutPathResolvesFlagThenEnv) {
  const char* argv_with_flag[] = {"prog", "--telemetry_out=/tmp/x.json"};
  EXPECT_EQ(TelemetryOutPath(2, const_cast<char**>(argv_with_flag)),
            "/tmp/x.json");
  const char* argv_plain[] = {"prog"};
  unsetenv("ENLD_TELEMETRY");
  EXPECT_EQ(TelemetryOutPath(1, const_cast<char**>(argv_plain)), "");
  setenv("ENLD_TELEMETRY", "/tmp/env.json", 1);
  EXPECT_EQ(TelemetryOutPath(1, const_cast<char**>(argv_plain)),
            "/tmp/env.json");
  // The explicit flag wins over the environment.
  EXPECT_EQ(TelemetryOutPath(2, const_cast<char**>(argv_with_flag)),
            "/tmp/x.json");
  unsetenv("ENLD_TELEMETRY");
}

// ---------------------------------------------------------------------------
// Determinism across thread counts.

TEST_F(TelemetryTest, CostMetricClassification) {
  EXPECT_TRUE(IsCostMetric("pool/tasks"));
  EXPECT_TRUE(IsCostMetric("pool/queue_wait_us"));
  EXPECT_TRUE(IsCostMetric("train/batch_assembly_us"));
  EXPECT_TRUE(IsCostMetric("quality/setup_seconds"));
  EXPECT_FALSE(IsCostMetric("detect/votes_cast"));
  EXPECT_FALSE(IsCostMetric("knn/queries"));
}

TEST_F(TelemetryTest, DeterministicViewStripsCostMetrics) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("pool/tasks")->Add(10);
  registry.GetCounter("detect/votes_cast")->Add(20);
  registry.GetCounter("train/batch_assembly_us")->Add(30);
  const MetricsSnapshot view = DeterministicView(registry.Snapshot());
  EXPECT_EQ(view.counters.count("pool/tasks"), 0u);
  EXPECT_EQ(view.counters.count("train/batch_assembly_us"), 0u);
  EXPECT_EQ(view.counters.at("detect/votes_cast"), 20u);
}

// The acceptance criterion in miniature: running the same instrumented
// workload at 1 thread and at 8 threads must produce identical
// deterministic-view metric values (cost metrics excepted).
TEST_F(TelemetryTest, MetricValuesIdenticalAcrossThreadCounts) {
  auto run_workload = [](size_t threads) {
    SetParallelThreads(threads);
    ResetTelemetry();
    auto& registry = MetricsRegistry::Global();
    Counter* processed = registry.GetCounter("test/processed");
    Histogram* hist = registry.GetHistogram("test/values", {10.0, 100.0});
    ParallelFor(0, 5000, 32, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        processed->Increment();
        hist->Observe(static_cast<double>(i % 150));
      }
    });
    // Sequential-region series, as the detector records per iteration.
    Series* series = registry.GetSeries("test/series");
    for (int i = 0; i < 4; ++i) series->Append(i * 1.5);
    return DeterministicView(registry.Snapshot());
  };

  const MetricsSnapshot sequential = run_workload(1);
  const MetricsSnapshot parallel = run_workload(8);
  EXPECT_EQ(sequential.counters, parallel.counters);
  EXPECT_EQ(sequential.series, parallel.series);
  ASSERT_EQ(sequential.histograms.size(), parallel.histograms.size());
  for (const auto& [name, hist] : sequential.histograms) {
    const HistogramSnapshot& other = parallel.histograms.at(name);
    EXPECT_EQ(hist.bucket_counts, other.bucket_counts) << name;
    EXPECT_EQ(hist.count, other.count) << name;
    EXPECT_DOUBLE_EQ(hist.sum, other.sum) << name;
  }
  // The built-in loop counters recorded by ParallelFor itself are part of
  // the deterministic contract too: chunking is thread-count independent.
  EXPECT_EQ(sequential.counters.at("parallel/loops"),
            parallel.counters.at("parallel/loops"));
  EXPECT_EQ(sequential.counters.at("parallel/chunks"),
            parallel.counters.at("parallel/chunks"));
}

}  // namespace
}  // namespace telemetry
}  // namespace enld
