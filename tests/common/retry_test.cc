#include "common/retry.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace enld {
namespace {

/// A retry policy with zero sleep, so tests exercise the attempt logic
/// without wall-clock delays.
RetryPolicy FastPolicy(size_t max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_seconds = 0.0;
  policy.max_backoff_seconds = 0.0;
  return policy;
}

TEST(RetryTest, IsRetryableStatusClassifiesCodes) {
  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("flaky")));
  EXPECT_TRUE(IsRetryableStatus(Status::Internal("short write")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("gone")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsRetryableStatus(Status::FailedPrecondition("early")));
}

TEST(RetryTest, SucceedsFirstTryWithoutRetrying) {
  size_t calls = 0;
  const Status status = RetryWithBackoff(FastPolicy(5), "op", [&]() {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, AbsorbsTransientFailures) {
  size_t calls = 0;
  const Status status = RetryWithBackoff(FastPolicy(5), "op", [&]() {
    ++calls;
    if (calls < 3) return Status::Unavailable("transient");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, NonRetryableStatusPassesStraightThrough) {
  size_t calls = 0;
  const Status status = RetryWithBackoff(FastPolicy(5), "op", [&]() {
    ++calls;
    return Status::NotFound("no such snapshot");
  });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "no such snapshot");
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, ExhaustionKeepsCodeAndNamesOperation) {
  size_t calls = 0;
  const Status status =
      RetryWithBackoff(FastPolicy(3), "write MANIFEST.json", [&]() {
        ++calls;
        return Status::Unavailable("injected fault at store/write_file");
      });
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("injected fault at store/write_file"),
            std::string::npos);
  EXPECT_NE(status.message().find("gave up after 3 attempt(s) of write "
                                  "MANIFEST.json"),
            std::string::npos);
}

TEST(RetryTest, NoRetryPolicyRunsExactlyOnce) {
  size_t calls = 0;
  const Status status = RetryWithBackoff(RetryPolicy::NoRetry(), "op", [&]() {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(RetryTest, ZeroAttemptsIsClampedToOne) {
  RetryPolicy policy = FastPolicy(0);
  size_t calls = 0;
  const Status status = RetryWithBackoff(policy, "op", [&]() {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(status.ok());
}

TEST(RetryTest, DeadlineStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_seconds = 10.0;  // would sleep far past deadline
  policy.max_backoff_seconds = 10.0;
  policy.deadline_seconds = 0.001;
  size_t calls = 0;
  const Status status = RetryWithBackoff(policy, "slow op", [&]() {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(calls, 1u);  // deadline rejects the first 10s backoff
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("retry deadline"), std::string::npos);
}

TEST(RetryTest, DeadlineGatesCappedDelayNotRawBackoff) {
  // Regression: the deadline check used to compare against the raw
  // exponential backoff value, which max_backoff never touched — a policy
  // whose *slept* delays fit comfortably in the budget was aborted after
  // one attempt because the uncapped schedule looked too expensive.
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 100.0;  // raw schedule: 100s, 1000s, ...
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 0.0;  // ...but every slept delay is 0s
  policy.deadline_seconds = 30.0;
  size_t calls = 0;
  const Status status = RetryWithBackoff(policy, "op", [&]() {
    ++calls;
    if (calls < 3) return Status::Unavailable("transient");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3u);
}

TEST(RetryTest, BackoffScheduleClampsInsteadOfOverflowing) {
  // Regression: the uncapped exponential product overflowed to +inf within
  // a few attempts, and `elapsed + inf > deadline` then killed every retry
  // the budget still afforded.
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 1e308;
  policy.backoff_multiplier = 1e308;
  policy.max_backoff_seconds = 0.0;
  policy.deadline_seconds = 60.0;
  size_t calls = 0;
  const Status status = RetryWithBackoff(policy, "op", [&]() {
    ++calls;
    return Status::Unavailable("transient");
  });
  EXPECT_EQ(calls, 6u);  // every attempt ran; exhaustion, not the deadline
  EXPECT_NE(status.message().find("gave up after 6 attempt(s)"),
            std::string::npos);
}

TEST(RetryTest, JitterDrawsOncePerSleepFromSuppliedRng) {
  RetryPolicy policy = FastPolicy(4);
  policy.initial_backoff_seconds = 1e-9;
  policy.max_backoff_seconds = 1e-9;
  policy.jitter_fraction = 0.5;
  Rng rng(123);
  size_t calls = 0;
  const Status status = RetryWithBackoff(
      policy, "op",
      [&]() {
        ++calls;
        if (calls < 4) return Status::Unavailable("transient");
        return Status::OK();
      },
      &rng);
  EXPECT_TRUE(status.ok());
  // 3 sleeps happened, so exactly 3 draws were consumed: the Rng is now in
  // the same state as a fresh one advanced by 3 draws.
  Rng expected(123);
  expected.Uniform(-0.5, 0.5);
  expected.Uniform(-0.5, 0.5);
  expected.Uniform(-0.5, 0.5);
  EXPECT_DOUBLE_EQ(rng.Uniform(), expected.Uniform());
}

TEST(RetryTest, StatusOrVariantReturnsValueAfterTransients) {
  size_t calls = 0;
  const StatusOr<std::string> result = RetryWithBackoffOr<std::string>(
      FastPolicy(5), "read file", [&]() -> StatusOr<std::string> {
        ++calls;
        if (calls < 2) return Status::Unavailable("transient");
        return std::string("payload");
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "payload");
  EXPECT_EQ(calls, 2u);
}

TEST(RetryTest, StatusOrVariantPropagatesExhaustion) {
  const StatusOr<int> result = RetryWithBackoffOr<int>(
      FastPolicy(2), "read file",
      []() -> StatusOr<int> { return Status::Unavailable("transient"); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("gave up after 2 attempt(s)"),
            std::string::npos);
}

}  // namespace
}  // namespace enld
