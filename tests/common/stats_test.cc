#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace enld {
namespace {

TEST(OnlineStatsTest, EmptyState) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  // Sum of squared deviations from the mean (5.0) is 32; sample variance
  // divides by n-1 = 7.
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

// Regression for the population-variance bug: variance() guarded
// count < 2 (a sample-variance convention) but divided by n. Pin the
// sample values for a small sequence so a silent divisor change fails.
TEST(OnlineStatsTest, SampleVarianceSmallSequence) {
  OnlineStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  // mean 2.5, squared deviations 2.25 + 0.25 + 0.25 + 2.25 = 5.
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), std::sqrt(5.0 / 3.0));

  // Two observations: variance is half the squared gap, not a quarter.
  OnlineStats pair;
  pair.Add(1.0);
  pair.Add(3.0);
  EXPECT_DOUBLE_EQ(pair.variance(), 2.0);
  EXPECT_DOUBLE_EQ(pair.stddev(), std::sqrt(2.0));
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  Rng rng(1);
  OnlineStats stats;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    values.push_back(v);
    stats.Add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= values.size() - 1;
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
}

TEST(TwoMeansTest, SeparatesTwoClusters) {
  std::vector<double> values;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) values.push_back(rng.Gaussian(0.0, 0.3));
  for (int i = 0; i < 40; ++i) values.push_back(rng.Gaussian(5.0, 0.3));
  const double threshold = TwoMeansThreshold(values);
  EXPECT_GT(threshold, 1.0);
  EXPECT_LT(threshold, 4.0);
}

TEST(TwoMeansTest, AllEqualReturnsValue) {
  EXPECT_DOUBLE_EQ(TwoMeansThreshold({3.0, 3.0, 3.0}), 3.0);
}

TEST(TwoMeansTest, TwoValues) {
  const double threshold = TwoMeansThreshold({1.0, 9.0});
  EXPECT_DOUBLE_EQ(threshold, 5.0);
}

TEST(TwoMeansTest, UnbalancedClusters) {
  // 95 low values, 5 high: the threshold must still land between.
  std::vector<double> values(95, 0.1);
  for (int i = 0; i < 5; ++i) values.push_back(8.0);
  const double threshold = TwoMeansThreshold(values);
  EXPECT_GT(threshold, 0.1);
  EXPECT_LT(threshold, 8.0);
}

}  // namespace
}  // namespace enld
