#include "common/parallel.h"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace enld {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  // Tests in this file reconfigure the global pool; restore the default
  // (ENLD_THREADS / hardware) afterwards so other suites are unaffected.
  void TearDown() override { SetParallelThreads(0); }
};

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  SetParallelThreads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(), 7, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ChunkBoundsRespectGrain) {
  SetParallelThreads(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(10, 35, 10, [&](size_t lo, size_t hi) {
    EXPECT_LE(hi - lo, 10u);
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  // Boundaries depend only on (begin, end, grain): 10-20, 20-30, 30-35.
  ASSERT_EQ(chunks.size(), 3u);
  size_t covered = 0;
  for (const auto& [lo, hi] : chunks) covered += hi - lo;
  EXPECT_EQ(covered, 25u);
}

TEST_F(ParallelTest, EmptyRangeAndReversedRangeAreNoOps) {
  SetParallelThreads(2);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(9, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelTest, GrainZeroIsTreatedAsOne) {
  SetParallelThreads(2);
  std::atomic<int> total{0};
  ParallelFor(0, 10, 0, [&](size_t lo, size_t hi) {
    EXPECT_EQ(hi - lo, 1u);
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST_F(ParallelTest, GrainLargerThanRangeRunsOneChunk) {
  SetParallelThreads(4);
  int calls = 0;  // Single chunk runs inline on the caller: no race.
  ParallelFor(3, 8, 100, [&](size_t lo, size_t hi) {
    EXPECT_EQ(lo, 3u);
    EXPECT_EQ(hi, 8u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
  SetParallelThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](size_t lo, size_t) {
                    if (lo == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST_F(ParallelTest, ExceptionOnSequentialPathPropagates) {
  SetParallelThreads(1);
  EXPECT_THROW(ParallelFor(0, 10, 1,
                           [&](size_t lo, size_t) {
                             if (lo == 5) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST_F(ParallelTest, PoolIsReusedAcrossManyLoops) {
  SetParallelThreads(3);
  EXPECT_EQ(ParallelThreadCount(), 3u);
  std::atomic<size_t> total{0};
  for (int rep = 0; rep < 200; ++rep) {
    ParallelFor(0, 64, 4, [&](size_t lo, size_t hi) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 200u * 64u);
  EXPECT_EQ(ParallelThreadCount(), 3u);
}

TEST_F(ParallelTest, SetParallelThreadsReconfigures) {
  SetParallelThreads(2);
  EXPECT_EQ(ParallelThreadCount(), 2u);
  SetParallelThreads(5);
  EXPECT_EQ(ParallelThreadCount(), 5u);
  SetParallelThreads(1);
  EXPECT_EQ(ParallelThreadCount(), 1u);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  SetParallelThreads(4);
  std::vector<std::atomic<int>> hits(256);
  ParallelFor(0, 16, 1, [&](size_t lo, size_t hi) {
    for (size_t outer = lo; outer < hi; ++outer) {
      ParallelFor(0, 16, 1, [&](size_t ilo, size_t ihi) {
        for (size_t inner = ilo; inner < ihi; ++inner) {
          hits[outer * 16 + inner].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ReduceMatchesSequentialSum) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    SetParallelThreads(threads);
    const size_t result = ParallelReduce(
        0, 10001, 64, size_t{0},
        [](size_t lo, size_t hi) {
          size_t s = 0;
          for (size_t i = lo; i < hi; ++i) s += i;
          return s;
        },
        [](size_t acc, size_t partial) { return acc + partial; });
    EXPECT_EQ(result, 10000u * 10001u / 2) << "threads=" << threads;
  }
}

TEST_F(ParallelTest, ReduceCombinesPartialsInChunkOrder) {
  SetParallelThreads(4);
  // Concatenation is order-sensitive: equality with the sequential result
  // proves the ordered-combine guarantee.
  const std::vector<size_t> result = ParallelReduce(
      0, 100, 9, std::vector<size_t>{},
      [](size_t lo, size_t hi) {
        std::vector<size_t> chunk;
        for (size_t i = lo; i < hi; ++i) chunk.push_back(i);
        return chunk;
      },
      [](std::vector<size_t> acc, std::vector<size_t> partial) {
        acc.insert(acc.end(), partial.begin(), partial.end());
        return acc;
      });
  ASSERT_EQ(result.size(), 100u);
  for (size_t i = 0; i < result.size(); ++i) EXPECT_EQ(result[i], i);
}

TEST_F(ParallelTest, ReduceIdenticalAcrossThreadCounts) {
  auto run = [] {
    return ParallelReduce(
        0, 5000, 128, 0.0,
        [](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += 1.0 / (1.0 + i);
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  SetParallelThreads(1);
  const double sequential = run();
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    SetParallelThreads(threads);
    EXPECT_EQ(run(), sequential) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace enld
