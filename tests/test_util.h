#ifndef ENLD_TESTS_TEST_UTIL_H_
#define ENLD_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "data/workload.h"
#include "nn/general_model.h"

namespace enld {
namespace testing_util {

/// A small, fast workload for integration-style tests: 12 classes,
/// a few hundred samples, 3 incremental datasets.
inline WorkloadConfig TinyWorkloadConfig(double noise_rate,
                                         uint64_t seed = 9999) {
  WorkloadConfig config;
  config.profile.name = "test-sim";
  config.profile.num_classes = 12;
  config.profile.samples_per_class = 60;
  config.profile.feature_dim = 16;
  config.profile.class_separation = 7.0;
  config.profile.adjacent_correlation = 0.35;
  config.profile.subclusters_per_class = 2;
  config.profile.subcluster_spread = 1.2;
  config.profile.incremental_domain_shift = 1.0;
  config.profile.seed = seed;
  config.noise_rate = noise_rate;
  config.stream.num_datasets = 3;
  config.stream.min_classes_per_dataset = 4;
  config.stream.max_classes_per_dataset = 5;
  config.seed = seed + 1;
  return config;
}

/// A fast general-model schedule for tests.
inline GeneralModelConfig TinyGeneralConfig() {
  GeneralModelConfig config;
  config.train.epochs = 6;
  return config;
}

}  // namespace testing_util
}  // namespace enld

#endif  // ENLD_TESTS_TEST_UTIL_H_
