#include "knn/kdtree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "knn/class_index.h"

namespace enld {
namespace {

Matrix RandomPoints(size_t n, size_t dim, Rng& rng) {
  Matrix m(n, dim);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      m(r, c) = static_cast<float>(rng.Gaussian());
    }
  }
  return m;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

TEST(KdTreeTest, EmptyTree) {
  Matrix points(0, 3);
  KdTree tree(points, {});
  EXPECT_TRUE(tree.empty());
  const float query[3] = {0, 0, 0};
  EXPECT_TRUE(tree.Nearest(query, 5).empty());
}

TEST(KdTreeTest, SinglePoint) {
  Matrix points(1, 2);
  points(0, 0) = 1.0f;
  KdTree tree(points);
  const float query[2] = {0.0f, 0.0f};
  const auto result = tree.Nearest(query, 3);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 0u);
  EXPECT_FLOAT_EQ(result[0].distance_squared, 1.0f);
}

TEST(KdTreeTest, ExactNearestOnLine) {
  Matrix points(5, 1);
  for (size_t i = 0; i < 5; ++i) points(i, 0) = static_cast<float>(i * 2);
  KdTree tree(points);
  const float query[1] = {4.6f};
  const auto result = tree.Nearest(query, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].index, 2u);  // 4.0 is nearest to 4.6.
  EXPECT_EQ(result[1].index, 3u);  // then 6.0.
}

TEST(KdTreeTest, ResultsOrderedByDistance) {
  Rng rng(1);
  const Matrix points = RandomPoints(200, 5, rng);
  KdTree tree(points);
  const auto query = points.RowVector(17);
  const auto result = tree.Nearest(query, 10);
  ASSERT_EQ(result.size(), 10u);
  EXPECT_EQ(result[0].index, 17u);  // The point itself.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance_squared, result[i].distance_squared);
  }
}

TEST(KdTreeTest, KLargerThanNReturnsAll) {
  Rng rng(2);
  const Matrix points = RandomPoints(7, 3, rng);
  KdTree tree(points);
  const float query[3] = {0, 0, 0};
  EXPECT_EQ(tree.Nearest(query, 100).size(), 7u);
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  Matrix points(6, 2, 1.0f);  // All identical.
  KdTree tree(points);
  const float query[2] = {1.0f, 1.0f};
  const auto result = tree.Nearest(query, 4);
  ASSERT_EQ(result.size(), 4u);
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_FLOAT_EQ(result[i].distance_squared, 0.0f);
    // NeighborBefore tie-breaking: equal distances resolve to the
    // smallest original indices, in increasing order.
    EXPECT_EQ(result[i].index, i);
  }
}

// Regression for the strict-< far-side prune: with many exact duplicates
// the k-th worst distance often equals the split-plane distance, and the
// old prune could skip a far-side point that wins its tie on index —
// KdTree and brute force then disagreed. Both now rank by NeighborBefore
// (distance, then index), so results must be identical, indices included.
TEST(KdTreeTest, DuplicateHeavyMatchesBruteForceExactly) {
  Rng rng(21);
  const size_t n = 300, dim = 3;
  Matrix points(n, dim);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < dim; ++c) {
      // Small integer grid: exact distance ties everywhere.
      points(r, c) = static_cast<float>(rng.UniformInt(3));
    }
  }
  const auto rows = AllRows(n);
  KdTree tree(points, rows);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> query(dim);
    for (auto& q : query) q = static_cast<float>(rng.UniformInt(3));
    const size_t k = 1 + rng.UniformInt(12);
    const auto fast = tree.Nearest(query.data(), k);
    const auto slow = BruteForceNearest(points, rows, query.data(), k);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].index, slow[i].index) << "trial " << trial;
      EXPECT_EQ(fast[i].distance_squared, slow[i].distance_squared);
    }
  }
}

// The all-identical-spread degenerate case keeps the whole point set as
// one oversized leaf (> kLeafSize), exercising the batched kernel's
// large-block path and the per-query scratch sizing.
TEST(KdTreeTest, SingleLeafAllIdenticalPoints) {
  const size_t n = 100;  // Far above the leaf size of 16.
  Matrix points(n, 4, 2.5f);
  KdTree tree(points);
  const float query[4] = {2.5f, 2.5f, 2.5f, 2.5f};
  const auto result = tree.Nearest(query, 10);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].index, i);
    EXPECT_FLOAT_EQ(result[i].distance_squared, 0.0f);
  }
  // k > n returns everything, still in index order.
  EXPECT_EQ(tree.Nearest(query, 2 * n).size(), n);
}

TEST(KdTreeTest, SubsetIndexingReturnsSourceRows) {
  Rng rng(3);
  const Matrix points = RandomPoints(50, 4, rng);
  const std::vector<size_t> rows = {5, 10, 15, 20, 25};
  KdTree tree(points, rows);
  EXPECT_EQ(tree.size(), 5u);
  const auto query = points.RowVector(15);
  const auto result = tree.Nearest(query, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index, 15u);
}

struct SweepParam {
  size_t n;
  size_t dim;
  size_t k;
  uint64_t seed;
};

class KdTreeBruteForceEquivalence
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KdTreeBruteForceEquivalence, MatchesBruteForce) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);
  const Matrix points = RandomPoints(p.n, p.dim, rng);
  const auto rows = AllRows(p.n);
  KdTree tree(points, rows);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> query(p.dim);
    for (auto& q : query) q = static_cast<float>(rng.Gaussian(0.0, 2.0));
    const auto fast = tree.Nearest(query.data(), p.k);
    const auto slow = BruteForceNearest(points, rows, query.data(), p.k);
    ASSERT_EQ(fast.size(), slow.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      // Both rank by NeighborBefore, so even tied distances resolve to the
      // same indices.
      EXPECT_EQ(fast[i].index, slow[i].index);
      EXPECT_EQ(fast[i].distance_squared, slow[i].distance_squared);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeBruteForceEquivalence,
    ::testing::Values(SweepParam{1, 2, 1, 10}, SweepParam{10, 2, 3, 11},
                      SweepParam{100, 3, 5, 12}, SweepParam{500, 8, 7, 13},
                      SweepParam{1000, 16, 10, 14},
                      SweepParam{64, 1, 64, 15}, SweepParam{33, 5, 1, 16}));

TEST(ClassIndexTest, RespectsClassConstraint) {
  Rng rng(4);
  const Matrix points = RandomPoints(60, 3, rng);
  std::vector<int> labels(60);
  for (size_t i = 0; i < 60; ++i) labels[i] = static_cast<int>(i % 3);
  ClassKnnIndex index(points, labels, AllRows(60), 3);
  EXPECT_EQ(index.ClassSize(0), 20u);
  EXPECT_TRUE(index.HasClass(2));

  const auto query = points.RowVector(0);
  for (int label = 0; label < 3; ++label) {
    for (const Neighbor& n : index.Nearest(label, query.data(), 5)) {
      EXPECT_EQ(labels[n.index], label);
    }
  }
}

TEST(ClassIndexTest, MissingClassReturnsEmpty) {
  Rng rng(5);
  const Matrix points = RandomPoints(10, 2, rng);
  std::vector<int> labels(10, 0);  // Only class 0 populated.
  ClassKnnIndex index(points, labels, AllRows(10), 4);
  EXPECT_FALSE(index.HasClass(3));
  const float query[2] = {0, 0};
  EXPECT_TRUE(index.Nearest(3, query, 2).empty());
  EXPECT_EQ(index.Nearest(0, query, 2).size(), 2u);
}

TEST(ClassIndexTest, IndexesOnlyGivenRows) {
  Rng rng(6);
  const Matrix points = RandomPoints(20, 2, rng);
  std::vector<int> labels(20, 0);
  ClassKnnIndex index(points, labels, {1, 3, 5}, 1);
  EXPECT_EQ(index.ClassSize(0), 3u);
  const float query[2] = {0, 0};
  for (const Neighbor& n : index.Nearest(0, query, 10)) {
    EXPECT_TRUE(n.index == 1 || n.index == 3 || n.index == 5);
  }
}

TEST(ClassIndexTest, NearestBatchKLargerThanClassPool) {
  Rng rng(7);
  const Matrix points = RandomPoints(10, 2, rng);
  std::vector<int> labels(10, 0);
  labels[8] = 1;
  labels[9] = 1;  // Class 1 holds only two points.
  ClassKnnIndex index(points, labels, AllRows(10), 2);

  const std::vector<int> query_labels = {1, 1, 0};
  const std::vector<size_t> query_rows = {0, 1, 2};
  const auto results = index.NearestBatch(query_labels, points, query_rows,
                                          /*k=*/10);
  ASSERT_EQ(results.size(), 3u);
  // k far above the class-1 pool: both members come back, nothing else.
  for (size_t q = 0; q < 2; ++q) {
    ASSERT_EQ(results[q].size(), 2u);
    for (const Neighbor& n : results[q]) {
      EXPECT_TRUE(n.index == 8 || n.index == 9);
    }
  }
  EXPECT_EQ(results[2].size(), 8u);  // Class 0: all eight members.
}

TEST(ClassIndexTest, NearestBatchEmptyClassYieldsEmpty) {
  Rng rng(8);
  const Matrix points = RandomPoints(6, 2, rng);
  std::vector<int> labels(6, 0);  // Class 1 exists but is unpopulated.
  ClassKnnIndex index(points, labels, AllRows(6), 2);
  const auto results =
      index.NearestBatch({1, 0}, points, {0, 1}, /*k=*/3);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].empty());
  EXPECT_EQ(results[1].size(), 3u);
}

}  // namespace
}  // namespace enld
