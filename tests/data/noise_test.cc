#include "data/noise.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace enld {
namespace {

TEST(TransitionMatrixTest, IdentityIsNoiseless) {
  const auto t = TransitionMatrix::Identity(4);
  EXPECT_TRUE(t.IsRowStochastic());
  EXPECT_DOUBLE_EQ(t.ExpectedNoiseRate(), 0.0);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t.At(i, i), 1.0);
}

TEST(TransitionMatrixTest, PairAsymmetricStructure) {
  const double eta = 0.3;
  const auto t = TransitionMatrix::PairAsymmetric(5, eta);
  EXPECT_TRUE(t.IsRowStochastic());
  EXPECT_NEAR(t.ExpectedNoiseRate(), eta, 1e-12);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(t.At(i, i), 1.0 - eta);
    EXPECT_DOUBLE_EQ(t.At(i, (i + 1) % 5), eta);
    for (int j = 0; j < 5; ++j) {
      if (j != i && j != (i + 1) % 5) {
        EXPECT_DOUBLE_EQ(t.At(i, j), 0.0);
      }
    }
  }
}

TEST(TransitionMatrixTest, PairAsymmetricSatisfiesPaperDefinition) {
  // Asymmetric noise (Section V-A2): T_ii = 1 - eta and there exist i != j
  // with T_ij > T_ik for k not in {i, j}.
  const auto t = TransitionMatrix::PairAsymmetric(4, 0.2);
  EXPECT_GT(t.At(0, 1), t.At(0, 2));
  EXPECT_GT(t.At(0, 1), t.At(0, 3));
}

TEST(TransitionMatrixTest, SymmetricStructure) {
  const double eta = 0.4;
  const auto t = TransitionMatrix::Symmetric(5, eta);
  EXPECT_TRUE(t.IsRowStochastic());
  EXPECT_NEAR(t.ExpectedNoiseRate(), eta, 1e-12);
  EXPECT_DOUBLE_EQ(t.At(2, 2), 0.6);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 0.1);
}

TEST(TransitionMatrixTest, FromRowsValid) {
  auto result = TransitionMatrix::FromRows({{0.5, 0.5}, {0.0, 1.0}});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 1), 0.5);
}

TEST(TransitionMatrixTest, FromRowsRejectsNonSquare) {
  auto result = TransitionMatrix::FromRows({{1.0, 0.0}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransitionMatrixTest, FromRowsRejectsNegative) {
  auto result = TransitionMatrix::FromRows({{1.5, -0.5}, {0.0, 1.0}});
  EXPECT_FALSE(result.ok());
}

TEST(TransitionMatrixTest, FromRowsRejectsBadRowSum) {
  auto result = TransitionMatrix::FromRows({{0.5, 0.4}, {0.0, 1.0}});
  EXPECT_FALSE(result.ok());
}

TEST(TransitionMatrixTest, FromRowsRejectsEmpty) {
  EXPECT_FALSE(TransitionMatrix::FromRows({}).ok());
}

TEST(TransitionMatrixTest, SampleObservedMatchesDistribution) {
  const auto t = TransitionMatrix::PairAsymmetric(3, 0.25);
  Rng rng(1);
  int flipped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int observed = t.SampleObserved(1, rng);
    EXPECT_TRUE(observed == 1 || observed == 2);
    if (observed == 2) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / n, 0.25, 0.02);
}

class ApplyNoiseTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ApplyNoiseTest, FlipRateTracksEta) {
  const double eta = std::get<0>(GetParam());
  const int classes = std::get<1>(GetParam());

  SyntheticConfig config;
  config.num_classes = classes;
  config.samples_per_class = 300;
  config.feature_dim = 4;
  config.seed = 5;
  Dataset data = GenerateSynthetic(config);
  const std::vector<int> truth_before = data.true_labels;

  Rng rng(7);
  const auto t = TransitionMatrix::PairAsymmetric(classes, eta);
  const size_t flipped = ApplyLabelNoise(&data, t, rng);

  EXPECT_EQ(data.true_labels, truth_before);  // Truth untouched.
  EXPECT_NEAR(static_cast<double>(flipped) / data.size(), eta, 0.03);
  EXPECT_EQ(flipped, data.GroundTruthNoisyIndices().size());
  // Every flip lands on the pair class.
  for (size_t i : data.GroundTruthNoisyIndices()) {
    EXPECT_EQ(data.observed_labels[i],
              (data.true_labels[i] + 1) % classes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoiseRates, ApplyNoiseTest,
    ::testing::Combine(::testing::Values(0.1, 0.2, 0.3, 0.4),
                       ::testing::Values(5, 12)));

TEST(ApplyNoiseTest, ZeroNoiseFlipsNothing) {
  SyntheticConfig config;
  config.num_classes = 3;
  config.samples_per_class = 50;
  config.feature_dim = 4;
  Dataset data = GenerateSynthetic(config);
  Rng rng(9);
  EXPECT_EQ(ApplyLabelNoise(&data, TransitionMatrix::Identity(3), rng), 0u);
}

TEST(MaskMissingLabelsTest, MasksRequestedFraction) {
  SyntheticConfig config;
  config.num_classes = 4;
  config.samples_per_class = 100;
  config.feature_dim = 4;
  Dataset data = GenerateSynthetic(config);
  Rng rng(11);
  const auto masked = MaskMissingLabels(&data, 0.25, rng);
  EXPECT_EQ(masked.size(), 100u);
  EXPECT_EQ(data.MissingLabelIndices().size(), 100u);
  for (size_t i : masked) {
    EXPECT_EQ(data.observed_labels[i], kMissingLabel);
  }
}

TEST(MaskMissingLabelsTest, ZeroAndFullRates) {
  SyntheticConfig config;
  config.num_classes = 2;
  config.samples_per_class = 10;
  config.feature_dim = 2;
  Dataset data = GenerateSynthetic(config);
  Rng rng(13);
  EXPECT_TRUE(MaskMissingLabels(&data, 0.0, rng).empty());
  const auto all = MaskMissingLabels(&data, 1.0, rng);
  EXPECT_EQ(all.size(), data.size());
}

}  // namespace
}  // namespace enld
