#include "data/workload.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyWorkloadConfig;

TEST(WorkloadTest, BuildsInventoryAndStream) {
  const Workload w = BuildWorkload(TinyWorkloadConfig(0.2));
  EXPECT_FALSE(w.inventory.empty());
  EXPECT_EQ(w.incremental.size(), 3u);
  w.inventory.CheckConsistent();
  for (const Dataset& d : w.incremental) d.CheckConsistent();
}

TEST(WorkloadTest, DeterministicGivenConfig) {
  const Workload a = BuildWorkload(TinyWorkloadConfig(0.2));
  const Workload b = BuildWorkload(TinyWorkloadConfig(0.2));
  ASSERT_EQ(a.inventory.size(), b.inventory.size());
  EXPECT_EQ(a.inventory.observed_labels, b.inventory.observed_labels);
  ASSERT_EQ(a.incremental.size(), b.incremental.size());
  for (size_t i = 0; i < a.incremental.size(); ++i) {
    EXPECT_EQ(a.incremental[i].ids, b.incremental[i].ids);
  }
}

TEST(WorkloadTest, NoiseRateMatchesConfig) {
  for (double eta : {0.1, 0.3}) {
    const Workload w = BuildWorkload(TinyWorkloadConfig(eta));
    const double observed =
        static_cast<double>(w.inventory.GroundTruthNoisyIndices().size()) /
        static_cast<double>(w.inventory.size());
    EXPECT_NEAR(observed, eta, 0.05) << "eta=" << eta;
  }
}

TEST(WorkloadTest, IncrementalDataAlsoNoisy) {
  const Workload w = BuildWorkload(TinyWorkloadConfig(0.3));
  size_t noisy = 0;
  size_t total = 0;
  for (const Dataset& d : w.incremental) {
    noisy += d.GroundTruthNoisyIndices().size();
    total += d.size();
  }
  EXPECT_NEAR(static_cast<double>(noisy) / total, 0.3, 0.08);
}

TEST(WorkloadTest, InventoryAndIncrementalIdsDisjoint) {
  const Workload w = BuildWorkload(TinyWorkloadConfig(0.2));
  std::set<uint64_t> inventory_ids(w.inventory.ids.begin(),
                                   w.inventory.ids.end());
  for (const Dataset& d : w.incremental) {
    for (uint64_t id : d.ids) EXPECT_EQ(inventory_ids.count(id), 0u);
  }
}

TEST(WorkloadTest, TransitionMatrixMatchesNoiseRate) {
  const Workload w = BuildWorkload(TinyWorkloadConfig(0.25));
  EXPECT_NEAR(w.transition.ExpectedNoiseRate(), 0.25, 1e-12);
  EXPECT_EQ(w.transition.num_classes(), w.inventory.num_classes);
}

TEST(WorkloadTest, DomainShiftMovesIncrementalClassMeans) {
  WorkloadConfig with_shift = TinyWorkloadConfig(0.0);
  with_shift.profile.incremental_domain_shift = 3.0;
  WorkloadConfig no_shift = TinyWorkloadConfig(0.0);
  no_shift.profile.incremental_domain_shift = 0.0;

  auto class_mean_distance = [](const Workload& w) {
    // Mean distance between inventory and incremental class centroids.
    const int classes = w.inventory.num_classes;
    const size_t dim = w.inventory.dim();
    std::vector<std::vector<double>> inv_mean(classes,
                                              std::vector<double>(dim, 0.0));
    std::vector<size_t> inv_count(classes, 0);
    for (size_t i = 0; i < w.inventory.size(); ++i) {
      const int y = w.inventory.true_labels[i];
      for (size_t d = 0; d < dim; ++d) {
        inv_mean[y][d] += w.inventory.features(i, d);
      }
      ++inv_count[y];
    }
    std::vector<std::vector<double>> inc_mean(classes,
                                              std::vector<double>(dim, 0.0));
    std::vector<size_t> inc_count(classes, 0);
    for (const Dataset& data : w.incremental) {
      for (size_t i = 0; i < data.size(); ++i) {
        const int y = data.true_labels[i];
        for (size_t d = 0; d < dim; ++d) {
          inc_mean[y][d] += data.features(i, d);
        }
        ++inc_count[y];
      }
    }
    double total = 0.0;
    int counted = 0;
    for (int c = 0; c < classes; ++c) {
      if (inv_count[c] < 10 || inc_count[c] < 10) continue;
      double dist = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = inv_mean[c][d] / inv_count[c] -
                            inc_mean[c][d] / inc_count[c];
        dist += diff * diff;
      }
      total += std::sqrt(dist);
      ++counted;
    }
    return counted > 0 ? total / counted : 0.0;
  };

  const double shifted = class_mean_distance(BuildWorkload(with_shift));
  const double unshifted = class_mean_distance(BuildWorkload(no_shift));
  EXPECT_GT(shifted, unshifted + 0.5);
}

TEST(WorkloadTest, PaperConfigsHaveDocumentedStreamShapes) {
  const WorkloadConfig emnist = EmnistWorkloadConfig(0.2);
  EXPECT_EQ(emnist.stream.num_datasets, 10u);
  EXPECT_EQ(emnist.stream.min_classes_per_dataset, 5);
  EXPECT_EQ(emnist.stream.max_classes_per_dataset, 6);

  const WorkloadConfig cifar = Cifar100WorkloadConfig(0.2);
  EXPECT_EQ(cifar.stream.num_datasets, 20u);
  EXPECT_EQ(cifar.stream.min_classes_per_dataset, 10);

  const WorkloadConfig tiny = TinyImagenetWorkloadConfig(0.2);
  EXPECT_EQ(tiny.stream.num_datasets, 20u);
  EXPECT_EQ(tiny.stream.min_classes_per_dataset, 20);
}

TEST(WorkloadTest, InventoryFractionRoughlyTwoToOne) {
  const Workload w = BuildWorkload(TinyWorkloadConfig(0.1));
  size_t incremental_total = 0;
  for (const Dataset& d : w.incremental) incremental_total += d.size();
  // The pool may not be fully consumed, so inventory / (pool) >= 2.
  EXPECT_GE(static_cast<double>(w.inventory.size()),
            2.0 * 0.9 * incremental_total / 1.0 * 0.5);
  // Per-class inventory count should be about twice the per-class pool.
  EXPECT_NEAR(static_cast<double>(w.inventory.size()) /
                  (w.inventory.num_classes *
                   w.config.profile.samples_per_class),
              2.0 / 3.0, 0.05);
}

}  // namespace
}  // namespace enld
