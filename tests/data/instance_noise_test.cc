#include <cmath>

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace enld {
namespace {

struct Fixture {
  SyntheticConfig config;
  ClassGeometry geometry;
  Dataset data;
};

Fixture MakeFixture() {
  Fixture f;
  f.config.num_classes = 6;
  f.config.samples_per_class = 200;
  f.config.feature_dim = 8;
  f.config.class_separation = 6.0;
  f.config.seed = 51;
  Rng geometry_rng(f.config.seed);
  f.geometry = MakeClassGeometry(f.config, geometry_rng);
  f.data = SampleFromGeometry(f.geometry, f.config.samples_per_class,
                              f.config.sample_stddev, geometry_rng);
  return f;
}

TEST(InstanceNoiseTest, AverageRateMatchesEta) {
  Fixture f = MakeFixture();
  Rng rng(1);
  const size_t flipped =
      ApplyInstanceDependentNoise(&f.data, f.geometry, 0.25, 2.0, rng);
  EXPECT_NEAR(static_cast<double>(flipped) / f.data.size(), 0.25, 0.04);
  EXPECT_EQ(flipped, f.data.GroundTruthNoisyIndices().size());
}

TEST(InstanceNoiseTest, ZeroEtaFlipsNothing) {
  Fixture f = MakeFixture();
  Rng rng(2);
  EXPECT_EQ(ApplyInstanceDependentNoise(&f.data, f.geometry, 0.0, 2.0, rng),
            0u);
}

TEST(InstanceNoiseTest, TrueLabelsUntouched) {
  Fixture f = MakeFixture();
  const std::vector<int> truth_before = f.data.true_labels;
  Rng rng(3);
  ApplyInstanceDependentNoise(&f.data, f.geometry, 0.3, 2.0, rng);
  EXPECT_EQ(f.data.true_labels, truth_before);
}

TEST(InstanceNoiseTest, FlipsTargetNearestOtherClass) {
  Fixture f = MakeFixture();
  Rng rng(4);
  ApplyInstanceDependentNoise(&f.data, f.geometry, 0.3, 2.0, rng);
  const size_t dim = f.data.dim();
  for (size_t i : f.data.GroundTruthNoisyIndices()) {
    // The observed (wrong) label is the nearest non-true prototype.
    const float* x = f.data.features.Row(i);
    double best = 1e300;
    int best_class = -1;
    for (int c = 0; c < f.data.num_classes; ++c) {
      if (c == f.data.true_labels[i]) continue;
      double dist = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double diff = x[d] - f.geometry.prototypes[c][d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    EXPECT_EQ(f.data.observed_labels[i], best_class);
  }
}

TEST(InstanceNoiseTest, BoundarySamplesFlipMoreOften) {
  // Flipped samples must sit closer to their nearest other prototype than
  // kept samples on average — the defining property of instance-dependent
  // noise.
  Fixture f = MakeFixture();
  Rng rng(5);
  ApplyInstanceDependentNoise(&f.data, f.geometry, 0.3, 2.0, rng);

  auto margin = [&](size_t i) {
    const float* x = f.data.features.Row(i);
    const int truth = f.data.true_labels[i];
    double own = 0.0;
    double other = 1e300;
    for (int c = 0; c < f.data.num_classes; ++c) {
      double dist = 0.0;
      for (size_t d = 0; d < f.data.dim(); ++d) {
        const double diff = x[d] - f.geometry.prototypes[c][d];
        dist += diff * diff;
      }
      dist = std::sqrt(dist);
      if (c == truth) {
        own = dist;
      } else {
        other = std::min(other, dist);
      }
    }
    return other - own;
  };

  double flipped_margin = 0.0;
  size_t flipped_count = 0;
  double kept_margin = 0.0;
  size_t kept_count = 0;
  for (size_t i = 0; i < f.data.size(); ++i) {
    if (f.data.observed_labels[i] != f.data.true_labels[i]) {
      flipped_margin += margin(i);
      ++flipped_count;
    } else {
      kept_margin += margin(i);
      ++kept_count;
    }
  }
  ASSERT_GT(flipped_count, 0u);
  ASSERT_GT(kept_count, 0u);
  EXPECT_LT(flipped_margin / flipped_count, kept_margin / kept_count);
}

TEST(PerClassMetricsTest, SplitsByObservedClass) {
  Matrix features(6, 1);
  // Observed: {0,0,0,1,1,1}; true: {0,1,0,1,0,1} -> noisy at 1 and 4.
  Dataset d = MakeDataset(std::move(features), {0, 0, 0, 1, 1, 1},
                          {0, 1, 0, 1, 0, 1}, 2);
  const auto per_class = PerObservedClassMetrics(d, {1, 4});
  ASSERT_EQ(per_class.size(), 2u);
  EXPECT_DOUBLE_EQ(per_class[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(per_class[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(per_class[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(per_class[1].recall, 1.0);
  // A wrong detection only hurts its own class's metrics.
  const auto wrong = PerObservedClassMetrics(d, {0, 4});
  EXPECT_DOUBLE_EQ(wrong[0].precision, 0.0);
  EXPECT_DOUBLE_EQ(wrong[1].precision, 1.0);
}

TEST(PerClassMetricsTest, AbsentClassGetsZeroCounts) {
  Matrix features(2, 1);
  Dataset d = MakeDataset(std::move(features), {0, 0}, {0, 0}, 3);
  const auto per_class = PerObservedClassMetrics(d, {});
  ASSERT_EQ(per_class.size(), 3u);
  EXPECT_EQ(per_class[1].actual_noisy, 0u);
  EXPECT_EQ(per_class[1].detected, 0u);
}

}  // namespace
}  // namespace enld
