#include "data/serialization.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/noise.h"
#include "data/synthetic.h"

namespace enld {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset SampleData() {
  SyntheticConfig config;
  config.num_classes = 4;
  config.samples_per_class = 10;
  config.feature_dim = 3;
  config.seed = 7;
  Dataset d = GenerateSynthetic(config);
  Rng rng(8);
  ApplyLabelNoise(&d, TransitionMatrix::PairAsymmetric(4, 0.25), rng);
  MaskMissingLabels(&d, 0.1, rng);
  return d;
}

TEST(DatasetCsvTest, RoundTrip) {
  const Dataset original = SampleData();
  const std::string path = TempPath("dataset_roundtrip.csv");
  ASSERT_TRUE(SaveDatasetCsv(original, path).ok());

  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->dim(), original.dim());
  EXPECT_EQ(loaded->num_classes, original.num_classes);
  EXPECT_EQ(loaded->observed_labels, original.observed_labels);
  EXPECT_EQ(loaded->true_labels, original.true_labels);
  EXPECT_EQ(loaded->ids, original.ids);
  for (size_t i = 0; i < original.features.size(); ++i) {
    EXPECT_NEAR(loaded->features.data()[i], original.features.data()[i],
                1e-5f);
  }
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, MissingFileIsNotFound) {
  const auto loaded = LoadDatasetCsv(TempPath("nope.csv"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatasetCsvTest, RejectsMissingMetadata) {
  const std::string path = TempPath("no_meta.csv");
  std::ofstream(path) << "id,observed,true,f0\n1,0,0,0.5\n";
  const auto loaded = LoadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsWrongFieldCount) {
  const std::string path = TempPath("bad_fields.csv");
  std::ofstream(path) << "# classes=2 dim=2\nid,observed,true,f0,f1\n"
                      << "1,0,0,0.5\n";  // Missing f1.
  const auto loaded = LoadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsOutOfRangeLabel) {
  const std::string path = TempPath("bad_label.csv");
  std::ofstream(path) << "# classes=2 dim=1\nid,observed,true,f0\n"
                      << "1,5,0,0.5\n";  // Observed label 5 of 2 classes.
  const auto loaded = LoadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, ToleratesCrlfLineEndings) {
  // The same file a Windows editor (or a git checkout with CRLF
  // translation) would produce: every line ends in \r\n.
  const std::string path = TempPath("crlf.csv");
  std::ofstream(path) << "# classes=2 dim=2\r\n"
                      << "id,observed,true,f0,f1\r\n"
                      << "7,0,1,0.5,-1.25\r\n"
                      << "8,-1,0,2,0.125\r\n";
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_EQ(loaded->ids, (std::vector<uint64_t>{7, 8}));
  EXPECT_EQ(loaded->observed_labels, (std::vector<int>{0, kMissingLabel}));
  EXPECT_EQ(loaded->true_labels, (std::vector<int>{1, 0}));
  EXPECT_EQ(loaded->features.data()[3], 0.125f);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, ToleratesMissingAndExtraTrailingNewlines) {
  // No final newline at all.
  const std::string no_newline = TempPath("no_trailing.csv");
  std::ofstream(no_newline) << "# classes=2 dim=1\nid,observed,true,f0\n"
                            << "1,0,0,0.5";
  auto loaded = LoadDatasetCsv(no_newline);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(no_newline.c_str());

  // Blank lines after the data.
  const std::string extra = TempPath("extra_trailing.csv");
  std::ofstream(extra) << "# classes=2 dim=1\nid,observed,true,f0\n"
                       << "1,0,0,0.5\n\n\n";
  loaded = LoadDatasetCsv(extra);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(extra.c_str());
}

TEST(DatasetCsvTest, RejectsNonFiniteFeatureNamingRowAndColumn) {
  const std::string path = TempPath("nan_feature.csv");
  std::ofstream(path) << "# classes=2 dim=2\nid,observed,true,f0,f1\n"
                      << "1,0,0,0.5,0.25\n"
                      << "2,1,1,nan,0.75\n";
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("non-finite feature value"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("row 1"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("column f0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, RejectsInfiniteAndUnparseableFeatures) {
  const std::string inf_path = TempPath("inf_feature.csv");
  std::ofstream(inf_path) << "# classes=2 dim=1\nid,observed,true,f0\n"
                          << "1,0,0,inf\n";
  auto loaded = LoadDatasetCsv(inf_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("non-finite feature value"),
            std::string::npos);
  std::remove(inf_path.c_str());

  const std::string junk_path = TempPath("junk_feature.csv");
  std::ofstream(junk_path) << "# classes=2 dim=1\nid,observed,true,f0\n"
                           << "1,0,0,0.5abc\n";
  loaded = LoadDatasetCsv(junk_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unparseable feature value"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("column f0"), std::string::npos);
  std::remove(junk_path.c_str());
}

TEST(DatasetCsvTest, PermissiveLoadCarriesBadCellsForScreening) {
  // One bad cell and one bad label: the permissive load keeps both rows so
  // admission screening (enld_cli validate) can report them, turning the
  // unusable values into NaN.
  const std::string path = TempPath("permissive.csv");
  std::ofstream(path) << "# classes=2 dim=2\nid,observed,true,f0,f1\n"
                      << "1,0,0,0.5,0.25\n"
                      << "2,1,1,nan,0.75\n"
                      << "3,9,0,0.5,0.5\n";
  CsvLoadOptions options;
  options.permissive = true;
  const auto loaded = LoadDatasetCsv(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_TRUE(std::isnan(loaded->features(1, 0)));
  EXPECT_EQ(loaded->observed_labels[2], 9);  // kept for screening
  std::remove(path.c_str());
}

TEST(DatasetCsvTest, PreservesMissingLabels) {
  Dataset d = SampleData();
  const size_t missing_before = d.MissingLabelIndices().size();
  ASSERT_GT(missing_before, 0u);
  const std::string path = TempPath("missing.csv");
  ASSERT_TRUE(SaveDatasetCsv(d, path).ok());
  const auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->MissingLabelIndices().size(), missing_before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace enld
