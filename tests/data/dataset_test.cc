#include "data/dataset.h"

#include <limits>

#include <gtest/gtest.h>

namespace enld {
namespace {

Dataset SmallDataset() {
  Matrix features(5, 2);
  for (size_t r = 0; r < 5; ++r) {
    features(r, 0) = static_cast<float>(r);
    features(r, 1) = static_cast<float>(r * 10);
  }
  // observed: {0, 1, 2, missing, 1}; true: {0, 2, 2, 1, 1}.
  Dataset d = MakeDataset(std::move(features), {0, 1, 2, kMissingLabel, 1},
                          {0, 2, 2, 1, 1}, /*num_classes=*/3,
                          /*first_id=*/100);
  return d;
}

TEST(DatasetTest, MakeDatasetAssignsSequentialIds) {
  const Dataset d = SmallDataset();
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.ids[0], 100u);
  EXPECT_EQ(d.ids[4], 104u);
}

TEST(DatasetTest, MakeDatasetDefaultsTrueLabelsToObserved) {
  Matrix features(2, 1);
  Dataset d = MakeDataset(std::move(features), {1, 0}, {}, 2);
  EXPECT_EQ(d.true_labels, d.observed_labels);
}

TEST(DatasetTest, SubsetPreservesIdsAndLabels) {
  const Dataset d = SmallDataset();
  const Dataset sub = d.Subset({4, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.ids[0], 104u);
  EXPECT_EQ(sub.ids[1], 100u);
  EXPECT_EQ(sub.observed_labels[0], 1);
  EXPECT_EQ(sub.true_labels[1], 0);
  EXPECT_EQ(sub.features(0, 0), 4.0f);
  EXPECT_EQ(sub.num_classes, 3);
}

TEST(DatasetTest, SubsetEmpty) {
  const Dataset d = SmallDataset();
  const Dataset sub = d.Subset({});
  EXPECT_TRUE(sub.empty());
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a = SmallDataset();
  const Dataset b = SmallDataset().Subset({0, 1});
  const size_t original = a.size();
  a.Append(b);
  EXPECT_EQ(a.size(), original + 2);
  EXPECT_EQ(a.observed_labels[original], 0);
  EXPECT_EQ(a.features(original + 1, 1), 10.0f);
}

TEST(DatasetTest, AppendToEmpty) {
  Dataset empty;
  empty.Append(SmallDataset());
  EXPECT_EQ(empty.size(), 5u);
}

TEST(DatasetTest, AppendEmptyIsNoOp) {
  Dataset a = SmallDataset();
  a.Append(Dataset());
  EXPECT_EQ(a.size(), 5u);
}

TEST(DatasetTest, IndicesWithObservedLabel) {
  const Dataset d = SmallDataset();
  EXPECT_EQ(d.IndicesWithObservedLabel(1),
            (std::vector<size_t>{1, 4}));
  EXPECT_TRUE(d.IndicesWithObservedLabel(9).empty());
}

TEST(DatasetTest, ObservedLabelSetExcludesMissing) {
  const Dataset d = SmallDataset();
  EXPECT_EQ(d.ObservedLabelSet(), (std::vector<int>{0, 1, 2}));
}

TEST(DatasetTest, MissingLabelIndices) {
  const Dataset d = SmallDataset();
  EXPECT_EQ(d.MissingLabelIndices(), (std::vector<size_t>{3}));
}

TEST(DatasetTest, GroundTruthNoisyIndices) {
  const Dataset d = SmallDataset();
  // Sample 1: observed 1, true 2 -> noisy. Sample 3 missing -> excluded.
  EXPECT_EQ(d.GroundTruthNoisyIndices(), (std::vector<size_t>{1}));
}

TEST(DatasetTest, CheckConsistentAcceptsValid) {
  SmallDataset().CheckConsistent();  // Must not abort.
}

TEST(DatasetTest, ValidateDatasetAcceptsValid) {
  EXPECT_TRUE(ValidateDataset(SmallDataset()).ok());
}

TEST(DatasetTest, ValidateDatasetRejectsNonFiniteFeature) {
  Dataset d = SmallDataset();
  d.features(3, 1) = std::numeric_limits<float>::quiet_NaN();
  const Status status = ValidateDataset(d);
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("row 3"), std::string::npos);
  EXPECT_NE(status.message().find("column 1"), std::string::npos);

  d = SmallDataset();
  d.features(0, 0) = std::numeric_limits<float>::infinity();
  EXPECT_EQ(ValidateDataset(d).code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, ValidateDatasetRejectsOutOfRangeLabels) {
  Dataset d = SmallDataset();
  d.observed_labels[2] = d.num_classes;
  EXPECT_EQ(ValidateDataset(d).code(), StatusCode::kInvalidArgument);

  d = SmallDataset();
  d.true_labels[4] = -1;
  EXPECT_EQ(ValidateDataset(d).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace enld
