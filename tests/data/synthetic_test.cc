#include "data/synthetic.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace enld {
namespace {

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_classes = 8;
  config.samples_per_class = 40;
  config.feature_dim = 16;
  config.class_separation = 6.0;
  config.adjacent_correlation = 0.4;
  config.seed = 77;
  return config;
}

TEST(SyntheticTest, GeneratesRequestedShape) {
  const Dataset d = GenerateSynthetic(SmallConfig());
  EXPECT_EQ(d.size(), 8u * 40u);
  EXPECT_EQ(d.dim(), 16u);
  EXPECT_EQ(d.num_classes, 8);
  d.CheckConsistent();
}

TEST(SyntheticTest, CleanLabels) {
  const Dataset d = GenerateSynthetic(SmallConfig());
  EXPECT_EQ(d.observed_labels, d.true_labels);
  EXPECT_TRUE(d.GroundTruthNoisyIndices().empty());
}

TEST(SyntheticTest, BalancedClasses) {
  const Dataset d = GenerateSynthetic(SmallConfig());
  std::vector<int> counts(8, 0);
  for (int y : d.true_labels) ++counts[y];
  for (int c : counts) EXPECT_EQ(c, 40);
}

TEST(SyntheticTest, DeterministicGivenConfig) {
  const Dataset a = GenerateSynthetic(SmallConfig());
  const Dataset b = GenerateSynthetic(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.true_labels, b.true_labels);
  for (size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_EQ(a.features.data()[i], b.features.data()[i]);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig c1 = SmallConfig();
  SyntheticConfig c2 = SmallConfig();
  c2.seed = 78;
  const Dataset a = GenerateSynthetic(c1);
  const Dataset b = GenerateSynthetic(c2);
  size_t differing = 0;
  for (size_t i = 0; i < a.features.size(); ++i) {
    if (a.features.data()[i] != b.features.data()[i]) ++differing;
  }
  EXPECT_GT(differing, a.features.size() / 2);
}

TEST(SyntheticTest, SampleOrderIsShuffled) {
  const Dataset d = GenerateSynthetic(SmallConfig());
  // If unshuffled, the first samples_per_class labels would all be 0.
  std::set<int> first_block(d.true_labels.begin(),
                            d.true_labels.begin() + 40);
  EXPECT_GT(first_block.size(), 1u);
}

TEST(GeometryTest, PrototypeNormsEqualSeparation) {
  const SyntheticConfig config = SmallConfig();
  Rng rng(config.seed);
  const ClassGeometry g = MakeClassGeometry(config, rng);
  for (const auto& p : g.prototypes) {
    double norm = 0.0;
    for (double x : p) norm += x * x;
    EXPECT_NEAR(std::sqrt(norm), config.class_separation, 1e-9);
  }
}

TEST(GeometryTest, AdjacentClassesCloserThanDistantOnAverage) {
  // The correlated prototype chain must make (c, c+1) pairs closer than
  // random pairs — the property pair-asymmetric noise exploits.
  SyntheticConfig config = SmallConfig();
  config.num_classes = 40;
  config.adjacent_correlation = 0.5;
  Rng rng(5);
  const ClassGeometry g = MakeClassGeometry(config, rng);
  double adjacent = 0.0;
  int adjacent_count = 0;
  double distant = 0.0;
  int distant_count = 0;
  for (int c = 0; c + 1 < config.num_classes; ++c) {
    adjacent += Distance(g.prototypes[c], g.prototypes[c + 1]);
    ++adjacent_count;
  }
  for (int c = 0; c + 10 < config.num_classes; c += 3) {
    distant += Distance(g.prototypes[c], g.prototypes[c + 10]);
    ++distant_count;
  }
  EXPECT_LT(adjacent / adjacent_count, distant / distant_count);
}

TEST(GeometryTest, SubclusterCentersAtConfiguredSpread) {
  SyntheticConfig config = SmallConfig();
  config.subclusters_per_class = 3;
  config.subcluster_spread = 2.0;
  Rng rng(6);
  const ClassGeometry g = MakeClassGeometry(config, rng);
  for (int c = 0; c < config.num_classes; ++c) {
    ASSERT_EQ(g.centers[c].size(), 3u);
    for (const auto& center : g.centers[c]) {
      EXPECT_NEAR(Distance(center, g.prototypes[c]), 2.0, 1e-9);
    }
  }
}

TEST(GeometryTest, ShiftMovesCentersByRequestedNorm) {
  const SyntheticConfig config = SmallConfig();
  Rng rng(config.seed);
  const ClassGeometry g = MakeClassGeometry(config, rng);
  Rng shift_rng(9);
  const ClassGeometry shifted = ShiftGeometry(g, 1.5, shift_rng);
  for (int c = 0; c < config.num_classes; ++c) {
    EXPECT_EQ(shifted.prototypes[c], g.prototypes[c]);
    for (size_t m = 0; m < g.centers[c].size(); ++m) {
      EXPECT_NEAR(Distance(shifted.centers[c][m], g.centers[c][m]), 1.5,
                  1e-9);
    }
  }
}

TEST(GeometryTest, ZeroShiftIsIdentity) {
  const SyntheticConfig config = SmallConfig();
  Rng rng(config.seed);
  const ClassGeometry g = MakeClassGeometry(config, rng);
  Rng shift_rng(9);
  const ClassGeometry shifted = ShiftGeometry(g, 0.0, shift_rng);
  for (int c = 0; c < config.num_classes; ++c) {
    EXPECT_EQ(shifted.centers[c], g.centers[c]);
  }
}

TEST(GeometryTest, SamplesConcentrateAroundOwnPrototype) {
  SyntheticConfig config = SmallConfig();
  config.class_separation = 10.0;  // Strongly separated for this check.
  Rng rng(config.seed);
  const ClassGeometry g = MakeClassGeometry(config, rng);
  Rng sample_rng(11);
  const Dataset d =
      SampleFromGeometry(g, 30, config.sample_stddev, sample_rng);
  size_t nearest_own = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    std::vector<double> x(d.dim());
    for (size_t dd = 0; dd < d.dim(); ++dd) x[dd] = d.features(i, dd);
    int best = -1;
    double best_dist = 1e300;
    for (int c = 0; c < config.num_classes; ++c) {
      const double dist = Distance(x, g.prototypes[c]);
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (best == d.true_labels[i]) ++nearest_own;
  }
  EXPECT_GT(static_cast<double>(nearest_own) / d.size(), 0.95);
}

TEST(ProfilesTest, PaperProfilesHaveDocumentedShapes) {
  const SyntheticConfig emnist = EmnistSimConfig();
  EXPECT_EQ(emnist.num_classes, 26);
  const SyntheticConfig cifar = Cifar100SimConfig();
  EXPECT_EQ(cifar.num_classes, 100);
  const SyntheticConfig tiny = TinyImagenetSimConfig();
  EXPECT_EQ(tiny.num_classes, 200);
  // Difficulty ordering: EMNIST easiest, Tiny-ImageNet hardest.
  EXPECT_GT(emnist.class_separation, cifar.class_separation);
  EXPECT_GT(cifar.class_separation, tiny.class_separation);
  EXPECT_LE(emnist.adjacent_correlation, cifar.adjacent_correlation);
  EXPECT_LE(cifar.adjacent_correlation, tiny.adjacent_correlation);
}

}  // namespace
}  // namespace enld
