#include "data/split.h"

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace enld {
namespace {

Dataset PoolDataset(int classes = 10, size_t per_class = 50) {
  SyntheticConfig config;
  config.num_classes = classes;
  config.samples_per_class = per_class;
  config.feature_dim = 8;
  config.seed = 3;
  return GenerateSynthetic(config);
}

TEST(InventorySplitTest, RespectsFraction) {
  const Dataset source = PoolDataset();
  Rng rng(1);
  const InventorySplit split =
      SplitInventoryIncremental(source, 2.0 / 3.0, rng);
  EXPECT_EQ(split.inventory.size() + split.incremental_pool.size(),
            source.size());
  EXPECT_NEAR(static_cast<double>(split.inventory.size()) / source.size(),
              2.0 / 3.0, 0.01);
}

TEST(InventorySplitTest, PartitionsIds) {
  const Dataset source = PoolDataset();
  Rng rng(2);
  const InventorySplit split = SplitInventoryIncremental(source, 0.5, rng);
  std::set<uint64_t> ids(split.inventory.ids.begin(),
                         split.inventory.ids.end());
  for (uint64_t id : split.incremental_pool.ids) {
    EXPECT_EQ(ids.count(id), 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), source.size());
}

TEST(TrainCandidateSplitTest, HalvesUniformly) {
  const Dataset inventory = PoolDataset();
  Rng rng(3);
  const TrainCandidateSplit split = SplitTrainCandidate(inventory, rng);
  EXPECT_EQ(split.train.size(), inventory.size() / 2);
  EXPECT_EQ(split.train.size() + split.candidate.size(), inventory.size());
  std::set<uint64_t> ids(split.train.ids.begin(), split.train.ids.end());
  for (uint64_t id : split.candidate.ids) EXPECT_EQ(ids.count(id), 0u);
}

TEST(IncrementalDatasetsTest, ProducesRequestedCount) {
  const Dataset pool = PoolDataset();
  IncrementalStreamConfig config;
  config.num_datasets = 5;
  config.min_classes_per_dataset = 3;
  config.max_classes_per_dataset = 4;
  Rng rng(4);
  const auto datasets = BuildIncrementalDatasets(pool, config, rng);
  EXPECT_EQ(datasets.size(), 5u);
  for (const Dataset& d : datasets) {
    EXPECT_FALSE(d.empty());
    d.CheckConsistent();
  }
}

TEST(IncrementalDatasetsTest, ClassCountsInRange) {
  const Dataset pool = PoolDataset();
  IncrementalStreamConfig config;
  config.num_datasets = 4;
  config.min_classes_per_dataset = 3;
  config.max_classes_per_dataset = 5;
  Rng rng(5);
  for (const Dataset& d : BuildIncrementalDatasets(pool, config, rng)) {
    const size_t classes = d.ObservedLabelSet().size();
    EXPECT_GE(classes, 3u);
    EXPECT_LE(classes, 5u);
  }
}

TEST(IncrementalDatasetsTest, SamplesUsedAtMostOnce) {
  const Dataset pool = PoolDataset();
  IncrementalStreamConfig config;
  config.num_datasets = 8;
  config.min_classes_per_dataset = 4;
  config.max_classes_per_dataset = 4;
  Rng rng(6);
  std::set<uint64_t> seen;
  for (const Dataset& d : BuildIncrementalDatasets(pool, config, rng)) {
    for (uint64_t id : d.ids) {
      EXPECT_EQ(seen.count(id), 0u) << "sample reused across stream";
      seen.insert(id);
    }
  }
  EXPECT_LE(seen.size(), pool.size());
}

TEST(IncrementalDatasetsTest, UnbalancedClassSizes) {
  // With take fractions in [0.25, 1.0], per-class counts inside one
  // dataset should not all be equal (the paper's "unbalanced" datasets).
  const Dataset pool = PoolDataset(12, 80);
  IncrementalStreamConfig config;
  config.num_datasets = 3;
  config.min_classes_per_dataset = 6;
  config.max_classes_per_dataset = 6;
  Rng rng(7);
  const auto datasets = BuildIncrementalDatasets(pool, config, rng);
  bool found_unbalanced = false;
  for (const Dataset& d : datasets) {
    std::vector<size_t> counts;
    for (int y : d.ObservedLabelSet()) {
      counts.push_back(d.IndicesWithObservedLabel(y).size());
    }
    for (size_t i = 1; i < counts.size(); ++i) {
      if (counts[i] != counts[0]) found_unbalanced = true;
    }
  }
  EXPECT_TRUE(found_unbalanced);
}

TEST(IncrementalDatasetsTest, HandlesPoolExhaustion) {
  // Ask for far more datasets than the pool can fill; the builder must
  // stop early rather than emit empty datasets.
  const Dataset pool = PoolDataset(3, 5);
  IncrementalStreamConfig config;
  config.num_datasets = 50;
  config.min_classes_per_dataset = 3;
  config.max_classes_per_dataset = 3;
  config.min_take_fraction = 0.9;
  Rng rng(8);
  const auto datasets = BuildIncrementalDatasets(pool, config, rng);
  EXPECT_GE(datasets.size(), 1u);
  EXPECT_LE(datasets.size(), 50u);
  for (const Dataset& d : datasets) EXPECT_FALSE(d.empty());
}

TEST(IncrementalDatasetsTest, SkipsMissingLabelSamples) {
  Dataset pool = PoolDataset(4, 20);
  for (size_t i = 0; i < pool.size(); i += 2) {
    pool.observed_labels[i] = kMissingLabel;
  }
  IncrementalStreamConfig config;
  config.num_datasets = 2;
  config.min_classes_per_dataset = 2;
  config.max_classes_per_dataset = 3;
  Rng rng(9);
  for (const Dataset& d : BuildIncrementalDatasets(pool, config, rng)) {
    EXPECT_TRUE(d.MissingLabelIndices().empty());
  }
}

}  // namespace
}  // namespace enld
