#include <set>

#include <gtest/gtest.h>

#include "baselines/confident_learning.h"
#include "baselines/default_detector.h"
#include "baselines/topofilter.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static void ExpectValidPartition(const Dataset& d,
                                   const DetectionResult& result) {
    std::set<size_t> seen;
    for (size_t i : result.clean_indices) EXPECT_TRUE(seen.insert(i).second);
    for (size_t i : result.noisy_indices) EXPECT_TRUE(seen.insert(i).second);
    EXPECT_EQ(seen.size(), d.size() - d.MissingLabelIndices().size());
  }

  static Workload* workload_;
};

Workload* BaselinesTest::workload_ = nullptr;

TEST_F(BaselinesTest, DefaultDetectorPartitionAndSemantics) {
  DefaultDetector detector(TinyGeneralConfig());
  detector.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  const DetectionResult result = detector.Detect(d);
  ExpectValidPartition(d, result);
  // Semantics: flagged iff prediction != observed.
  const auto predicted = detector.model()->Predict(d.features);
  for (size_t i : result.noisy_indices) {
    EXPECT_NE(predicted[i], d.observed_labels[i]);
  }
  for (size_t i : result.clean_indices) {
    EXPECT_EQ(predicted[i], d.observed_labels[i]);
  }
}

TEST_F(BaselinesTest, DefaultDetectorBeatsChance) {
  DefaultDetector detector(TinyGeneralConfig());
  detector.Setup(workload_->inventory);
  double f1 = 0.0;
  for (const Dataset& d : workload_->incremental) {
    f1 += EvaluateDetection(d, detector.Detect(d).noisy_indices).f1;
  }
  EXPECT_GT(f1 / workload_->incremental.size(), 0.4);
}

TEST_F(BaselinesTest, DefaultDetectorName) {
  DefaultDetector detector(TinyGeneralConfig());
  EXPECT_EQ(detector.name(), "default");
  EXPECT_EQ(detector.display_name(), "Default");
}

TEST_F(BaselinesTest, DefaultSkipsMissingLabels) {
  DefaultDetector detector(TinyGeneralConfig());
  detector.Setup(workload_->inventory);
  Dataset d = workload_->incremental[0];
  Rng rng(1);
  const auto masked = MaskMissingLabels(&d, 0.4, rng);
  const DetectionResult result = detector.Detect(d);
  ExpectValidPartition(d, result);
  std::set<size_t> flagged(result.noisy_indices.begin(),
                           result.noisy_indices.end());
  for (size_t i : masked) EXPECT_EQ(flagged.count(i), 0u);
}

TEST_F(BaselinesTest, ConfidentLearningVariantsDiffer) {
  ConfidentLearningDetector cl1(TinyGeneralConfig(),
                                ClVariant::kPruneByClass);
  ConfidentLearningDetector cl2(TinyGeneralConfig(),
                                ClVariant::kPruneByNoiseRate);
  EXPECT_EQ(cl1.name(), "cl1");
  EXPECT_EQ(cl2.name(), "cl2");
  EXPECT_EQ(cl1.display_name(), "CL-1");
  EXPECT_EQ(cl2.display_name(), "CL-2");
  cl1.Setup(workload_->inventory);
  cl2.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  const auto r1 = cl1.Detect(d);
  const auto r2 = cl2.Detect(d);
  ExpectValidPartition(d, r1);
  ExpectValidPartition(d, r2);
}

TEST_F(BaselinesTest, ConfidentLearningDetectsRoughlyNoiseRateFraction) {
  ConfidentLearningDetector detector(TinyGeneralConfig(),
                                     ClVariant::kPruneByClass);
  detector.Setup(workload_->inventory);
  size_t flagged = 0;
  size_t total = 0;
  for (const Dataset& d : workload_->incremental) {
    flagged += detector.Detect(d).noisy_indices.size();
    total += d.size();
  }
  const double fraction = static_cast<double>(flagged) / total;
  // Prune-by-class removes approximately the estimated noise mass.
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.5);
}

TEST_F(BaselinesTest, ConfidentLearningBeatsChance) {
  ConfidentLearningDetector detector(TinyGeneralConfig(),
                                     ClVariant::kPruneByNoiseRate);
  detector.Setup(workload_->inventory);
  double f1 = 0.0;
  for (const Dataset& d : workload_->incremental) {
    f1 += EvaluateDetection(d, detector.Detect(d).noisy_indices).f1;
  }
  EXPECT_GT(f1 / workload_->incremental.size(), 0.4);
}

TEST_F(BaselinesTest, TopofilterPartitionAndQuality) {
  TopofilterConfig config;
  config.train.epochs = 5;
  TopofilterDetector detector(config);
  detector.Setup(workload_->inventory);
  double f1 = 0.0;
  for (const Dataset& d : workload_->incremental) {
    const DetectionResult result = detector.Detect(d);
    ExpectValidPartition(d, result);
    f1 += EvaluateDetection(d, result.noisy_indices).f1;
  }
  EXPECT_GT(f1 / workload_->incremental.size(), 0.3);
}

TEST_F(BaselinesTest, TopofilterName) {
  EXPECT_EQ(TopofilterDetector(TopofilterConfig()).name(), "topofilter");
  EXPECT_EQ(TopofilterDetector(TopofilterConfig()).display_name(),
            "Topofilter");
}

TEST_F(BaselinesTest, TopofilterDeterministicPerRequestIndex) {
  TopofilterConfig config;
  config.train.epochs = 3;
  auto run = [&] {
    TopofilterDetector detector(config);
    detector.Setup(workload_->inventory);
    return detector.Detect(workload_->incremental[0]).noisy_indices;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(BaselinesTest, TopofilterSkipsMissingLabels) {
  TopofilterConfig config;
  config.train.epochs = 3;
  TopofilterDetector detector(config);
  detector.Setup(workload_->inventory);
  Dataset d = workload_->incremental[0];
  Rng rng(2);
  const auto masked = MaskMissingLabels(&d, 0.3, rng);
  const DetectionResult result = detector.Detect(d);
  ExpectValidPartition(d, result);
}

TEST_F(BaselinesTest, TopofilterCheckpointVotingConfig) {
  // checkpoints = 1 and = 3 must both run and may differ in output.
  TopofilterConfig one;
  one.train.epochs = 6;
  one.checkpoints = 1;
  TopofilterConfig three;
  three.train.epochs = 6;
  three.checkpoints = 3;
  TopofilterDetector d1(one);
  TopofilterDetector d3(three);
  d1.Setup(workload_->inventory);
  d3.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  ExpectValidPartition(d, d1.Detect(d));
  ExpectValidPartition(d, d3.Detect(d));
}

}  // namespace
}  // namespace enld
