#include <set>

#include <gtest/gtest.h>

#include "baselines/co_teaching.h"
#include "baselines/incv.h"
#include "baselines/o2u.h"
#include "baselines/related.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyWorkloadConfig;

class ExtendedBaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static void ExpectValidPartition(const Dataset& d,
                                   const DetectionResult& result) {
    std::set<size_t> seen;
    for (size_t i : result.clean_indices) EXPECT_TRUE(seen.insert(i).second);
    for (size_t i : result.noisy_indices) EXPECT_TRUE(seen.insert(i).second);
    EXPECT_EQ(seen.size(), d.size() - d.MissingLabelIndices().size());
  }

  static Workload* workload_;
};

Workload* ExtendedBaselinesTest::workload_ = nullptr;

TEST_F(ExtendedBaselinesTest, RelatedSubsetSelectsMatchingLabels) {
  const Dataset& d = workload_->incremental[0];
  const Dataset related = RelatedInventorySubset(workload_->inventory, d);
  EXPECT_FALSE(related.empty());
  const auto mask_labels = d.ObservedLabelSet();
  std::set<int> allowed(mask_labels.begin(), mask_labels.end());
  for (int y : related.observed_labels) {
    EXPECT_EQ(allowed.count(y), 1u);
  }
  // Every matching inventory sample is included.
  size_t expected = 0;
  for (int y : workload_->inventory.observed_labels) {
    if (allowed.count(y) > 0) ++expected;
  }
  EXPECT_EQ(related.size(), expected);
}

TEST_F(ExtendedBaselinesTest, RelatedSubsetSkipsMissingLabels) {
  Dataset inventory = workload_->inventory;
  Rng rng(1);
  MaskMissingLabels(&inventory, 0.5, rng);
  const Dataset related =
      RelatedInventorySubset(inventory, workload_->incremental[0]);
  EXPECT_TRUE(related.MissingLabelIndices().empty());
}

TEST_F(ExtendedBaselinesTest, O2UProducesValidPartition) {
  O2UConfig config;
  config.cycles = 2;
  config.epochs_per_cycle = 2;
  O2UDetector detector(config);
  detector.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  const DetectionResult result = detector.Detect(d);
  ExpectValidPartition(d, result);
  EXPECT_EQ(detector.name(), "o2u");
  EXPECT_EQ(detector.display_name(), "O2U-Net");
}

TEST_F(ExtendedBaselinesTest, O2UDeterministicPerRequestIndex) {
  O2UConfig config;
  config.cycles = 1;
  config.epochs_per_cycle = 2;
  auto run = [&] {
    O2UDetector detector(config);
    detector.Setup(workload_->inventory);
    return detector.Detect(workload_->incremental[0]).noisy_indices;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ExtendedBaselinesTest, CoTeachingProducesValidPartition) {
  CoTeachingConfig config;
  config.epochs = 4;
  CoTeachingDetector detector(config);
  detector.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  const DetectionResult result = detector.Detect(d);
  ExpectValidPartition(d, result);
  EXPECT_EQ(detector.name(), "coteaching");
  EXPECT_EQ(detector.display_name(), "Co-teaching");
}

TEST_F(ExtendedBaselinesTest, CoTeachingExplicitForgetRate) {
  CoTeachingConfig config;
  config.epochs = 4;
  config.forget_rate = 0.2;  // Skip the self-estimate path.
  CoTeachingDetector detector(config);
  detector.Setup(workload_->inventory);
  ExpectValidPartition(workload_->incremental[0],
                       detector.Detect(workload_->incremental[0]));
}

TEST_F(ExtendedBaselinesTest, IncvProducesValidPartition) {
  IncvConfig config;
  config.train.epochs = 3;
  IncvDetector detector(config);
  detector.Setup(workload_->inventory);
  const Dataset& d = workload_->incremental[0];
  const DetectionResult result = detector.Detect(d);
  ExpectValidPartition(d, result);
  EXPECT_EQ(detector.name(), "incv");
  EXPECT_EQ(detector.display_name(), "INCV");
}

TEST_F(ExtendedBaselinesTest, IncvHandlesTinyIncrementalDataset) {
  // Two labeled samples: still a valid partition (the related inventory
  // subset provides the cross-validation mass).
  IncvConfig config;
  config.train.epochs = 2;
  config.iterations = 1;
  IncvDetector detector(config);
  detector.Setup(workload_->inventory);
  const Dataset tiny = workload_->incremental[0].Subset({0, 1});
  ExpectValidPartition(tiny, detector.Detect(tiny));
}

TEST_F(ExtendedBaselinesTest, AllHandleMissingLabels) {
  Dataset d = workload_->incremental[0];
  Rng rng(2);
  MaskMissingLabels(&d, 0.3, rng);
  O2UConfig o2u_config;
  o2u_config.cycles = 1;
  o2u_config.epochs_per_cycle = 2;
  O2UDetector o2u(o2u_config);
  CoTeachingConfig ct_config;
  ct_config.epochs = 3;
  CoTeachingDetector ct(ct_config);
  IncvConfig incv_config;
  incv_config.train.epochs = 2;
  incv_config.iterations = 1;
  IncvDetector incv(incv_config);
  for (NoisyLabelDetector* detector :
       std::initializer_list<NoisyLabelDetector*>{&o2u, &ct, &incv}) {
    detector->Setup(workload_->inventory);
    ExpectValidPartition(d, detector->Detect(d));
  }
}

TEST_F(ExtendedBaselinesTest, PerRequestMethodsMissOutOfSubsetNoise) {
  // The structural finding this library documents (see
  // bench_extended_baselines): per-request training methods cannot catch
  // pair noise whose source class is outside label(D). Build a workload
  // with many classes but few classes per arriving dataset so the pair
  // source is almost always absent; INCV's recall must collapse there.
  WorkloadConfig config = testing_util::TinyWorkloadConfig(0.3, 4321);
  config.profile.num_classes = 30;
  config.profile.samples_per_class = 40;
  config.stream.num_datasets = 2;
  config.stream.min_classes_per_dataset = 4;
  config.stream.max_classes_per_dataset = 4;
  const Workload sparse = BuildWorkload(config);

  IncvConfig incv_config;
  incv_config.train.epochs = 3;
  IncvDetector incv(incv_config);
  incv.Setup(sparse.inventory);
  double incv_recall = 0.0;
  for (const Dataset& d : sparse.incremental) {
    incv_recall += EvaluateDetection(d, incv.Detect(d).noisy_indices).recall;
  }
  incv_recall /= sparse.incremental.size();
  EXPECT_LT(incv_recall, 0.6);
}

}  // namespace
}  // namespace enld
