#include "eval/reporting.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace enld {
namespace {

MethodRunResult SampleRun() {
  MethodRunResult run;
  run.method = "ENLD";
  run.noise_rate = 0.2;
  run.setup_seconds = 1.5;
  run.process_seconds = {0.1, 0.2};
  DetectionMetrics a;
  a.precision = 0.9;
  a.recall = 0.8;
  a.f1 = 0.847;
  DetectionMetrics b;
  b.precision = 0.5;
  b.recall = 0.5;
  b.f1 = 0.5;
  run.per_dataset = {a, b};
  return run;
}

TEST(ReportingTest, CsvHasHeaderSetupAndDataRows) {
  const std::string csv = MethodRunsToCsv({SampleRun()});
  std::istringstream stream(csv);
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line, "method,noise,dataset,precision,recall,f1,process_seconds");
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_NE(line.find("ENLD,0.200,setup"), std::string::npos);
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_NE(line.find("ENLD,0.200,0,0.9"), std::string::npos);
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_NE(line.find(",1,0.5"), std::string::npos);
  EXPECT_FALSE(std::getline(stream, line));
}

TEST(ReportingTest, MultipleRunsConcatenate) {
  MethodRunResult second = SampleRun();
  second.method = "Topofilter";
  const std::string csv = MethodRunsToCsv({SampleRun(), second});
  EXPECT_NE(csv.find("Topofilter"), std::string::npos);
  // One header only.
  EXPECT_EQ(csv.find("method,noise"), csv.rfind("method,noise"));
}

TEST(ReportingTest, WritesFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "/runs.csv";
  ASSERT_TRUE(WriteMethodRunsCsv({SampleRun()}, path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, MethodRunsToCsv({SampleRun()}));
  std::remove(path.c_str());
}

TEST(ReportingTest, BadPathFails) {
  EXPECT_EQ(WriteMethodRunsCsv({}, "/no_such_dir/x.csv").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace enld
