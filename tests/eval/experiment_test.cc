#include "eval/experiment.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "eval/paper_setup.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyWorkloadConfig;

/// A scripted detector: flags every sample whose position is even, and
/// sleeps a little so timings are observable.
class FakeDetector : public NoisyLabelDetector {
 public:
  void Setup(const Dataset& inventory) override {
    setup_calls_++;
    inventory_size_ = inventory.size();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  DetectionResult Detect(const Dataset& incremental) override {
    detect_calls_++;
    DetectionResult result;
    for (size_t i = 0; i < incremental.size(); ++i) {
      if (incremental.observed_labels[i] == kMissingLabel) continue;
      (i % 2 == 0 ? result.noisy_indices : result.clean_indices)
          .push_back(i);
    }
    return result;
  }

  std::string name() const override { return "Fake"; }

  int setup_calls_ = 0;
  int detect_calls_ = 0;
  size_t inventory_size_ = 0;
};

TEST(RunDetectorTest, DrivesSetupThenEveryDataset) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  FakeDetector detector;
  const MethodRunResult result = RunDetector(&detector, workload);
  EXPECT_EQ(detector.setup_calls_, 1);
  EXPECT_EQ(detector.detect_calls_,
            static_cast<int>(workload.incremental.size()));
  EXPECT_EQ(detector.inventory_size_, workload.inventory.size());
  EXPECT_EQ(result.method, "Fake");
  EXPECT_DOUBLE_EQ(result.noise_rate, 0.2);
}

TEST(RunDetectorTest, RecordsTimings) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  FakeDetector detector;
  const MethodRunResult result = RunDetector(&detector, workload);
  EXPECT_GE(result.setup_seconds, 0.004);
  EXPECT_EQ(result.process_seconds.size(), workload.incremental.size());
  EXPECT_GE(result.average_process_seconds(), 0.0);
}

TEST(RunDetectorTest, ComputesPerDatasetMetrics) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  FakeDetector detector;
  const MethodRunResult result = RunDetector(&detector, workload);
  ASSERT_EQ(result.per_dataset.size(), workload.incremental.size());
  for (const DetectionMetrics& m : result.per_dataset) {
    EXPECT_GE(m.recall, 0.0);
    EXPECT_LE(m.recall, 1.0);
  }
  // The fake flags ~half of all samples; average recall should be near 0.5.
  const DetectionMetrics avg = result.average();
  EXPECT_NEAR(avg.recall, 0.5, 0.3);
}

TEST(RunDetectorTest, KeepRawRetainsResults) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  FakeDetector detector;
  const MethodRunResult with_raw =
      RunDetector(&detector, workload, /*keep_raw=*/true);
  EXPECT_EQ(with_raw.raw_results.size(), workload.incremental.size());
  FakeDetector detector2;
  const MethodRunResult without =
      RunDetector(&detector2, workload, /*keep_raw=*/false);
  EXPECT_TRUE(without.raw_results.empty());
}

TEST(RunDetectorTest, AverageProcessSecondsEmptySafe) {
  MethodRunResult empty;
  EXPECT_DOUBLE_EQ(empty.average_process_seconds(), 0.0);
}

TEST(PaperSetupTest, NamesMatchPaper) {
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kEmnist), "EMNIST");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kCifar100), "CIFAR100");
  EXPECT_STREQ(PaperDatasetName(PaperDataset::kTinyImagenet),
               "Tiny-Imagenet");
}

TEST(PaperSetupTest, WorkloadShapesMatchPaperStreams) {
  EXPECT_EQ(PaperWorkloadConfig(PaperDataset::kEmnist, 0.1)
                .stream.num_datasets,
            10u);
  EXPECT_EQ(PaperWorkloadConfig(PaperDataset::kCifar100, 0.1)
                .stream.num_datasets,
            20u);
  EXPECT_EQ(PaperWorkloadConfig(PaperDataset::kTinyImagenet, 0.1)
                .profile.num_classes,
            200);
}

TEST(PaperSetupTest, EnldConfigsUsePaperHyperparameters) {
  for (PaperDataset dataset :
       {PaperDataset::kEmnist, PaperDataset::kCifar100,
        PaperDataset::kTinyImagenet}) {
    const EnldConfig config = PaperEnldConfig(dataset);
    EXPECT_EQ(config.contrastive_k, 3u);       // Paper: k = 3.
    EXPECT_EQ(config.steps_per_iteration, 5u); // Paper: s = 5.
    EXPECT_EQ(config.warmup_epochs, 2u);       // Paper: 2 warm-up epochs.
  }
  // Harder tasks run more fine-grained iterations.
  EXPECT_GE(PaperEnldConfig(PaperDataset::kTinyImagenet).iterations,
            PaperEnldConfig(PaperDataset::kEmnist).iterations);
}

}  // namespace
}  // namespace enld
