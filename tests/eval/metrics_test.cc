#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace enld {
namespace {

/// Dataset with ground-truth noisy positions {1, 3}.
Dataset FourSamples() {
  Matrix features(4, 1);
  return MakeDataset(std::move(features), {0, 1, 0, 1}, {0, 0, 0, 0}, 2);
}

TEST(EvaluateDetectionTest, PerfectDetection) {
  const Dataset d = FourSamples();
  const DetectionMetrics m = EvaluateDetection(d, {1, 3});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.true_positives, 2u);
}

TEST(EvaluateDetectionTest, PartialDetection) {
  const Dataset d = FourSamples();
  // Detected {1, 2}: one true positive, one false positive, one miss.
  const DetectionMetrics m = EvaluateDetection(d, {1, 2});
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(EvaluateDetectionTest, NothingDetected) {
  const Dataset d = FourSamples();
  const DetectionMetrics m = EvaluateDetection(d, {});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(EvaluateDetectionTest, CleanDatasetEmptyDetection) {
  Matrix features(3, 1);
  const Dataset d =
      MakeDataset(std::move(features), {0, 1, 0}, {0, 1, 0}, 2);
  const DetectionMetrics m = EvaluateDetection(d, {});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(EvaluateDetectionTest, CleanDatasetFalsePositives) {
  Matrix features(3, 1);
  const Dataset d =
      MakeDataset(std::move(features), {0, 1, 0}, {0, 1, 0}, 2);
  const DetectionMetrics m = EvaluateDetection(d, {0});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(EvaluateDetectionTest, F1IsHarmonicMean) {
  const Dataset d = FourSamples();
  const DetectionMetrics m = EvaluateDetection(d, {1, 0, 2});
  // precision 1/3, recall 1/2 -> f1 = 2 * (1/3 * 1/2) / (1/3 + 1/2) = 0.4.
  EXPECT_NEAR(m.f1, 0.4, 1e-12);
}

TEST(AverageMetricsTest, MacroAverage) {
  DetectionMetrics a;
  a.precision = 1.0;
  a.recall = 0.5;
  a.f1 = 2.0 / 3.0;
  DetectionMetrics b;
  b.precision = 0.0;
  b.recall = 0.5;
  b.f1 = 0.0;
  const DetectionMetrics avg = AverageMetrics({a, b});
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_DOUBLE_EQ(avg.recall, 0.5);
  EXPECT_NEAR(avg.f1, 1.0 / 3.0, 1e-12);
}

TEST(AverageMetricsTest, EmptyInputIsZero) {
  const DetectionMetrics avg = AverageMetrics({});
  EXPECT_DOUBLE_EQ(avg.f1, 0.0);
}

TEST(PseudoLabelAccuracyTest, CountsMatches) {
  Matrix features(4, 1);
  const Dataset d = MakeDataset(std::move(features),
                                {kMissingLabel, kMissingLabel, kMissingLabel,
                                 0},
                                {1, 2, 1, 0}, 3);
  const std::vector<int> recovered = {1, 0, kMissingLabel, kMissingLabel};
  // Positions 0,1,2 are missing; recovered correctly only at 0.
  EXPECT_NEAR(PseudoLabelAccuracy(d, recovered, {0, 1, 2}), 1.0 / 3.0,
              1e-12);
}

TEST(PseudoLabelAccuracyTest, EmptyPositions) {
  Matrix features(1, 1);
  const Dataset d = MakeDataset(std::move(features), {0}, {0}, 1);
  EXPECT_DOUBLE_EQ(PseudoLabelAccuracy(d, {0}, {}), 0.0);
}

}  // namespace
}  // namespace enld
