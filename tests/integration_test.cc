// End-to-end pipeline tests: the full data-platform scenario of the paper
// on a scaled-down workload — stream construction, every detector, the
// model-update loop and missing-label recovery, all in one place.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/confident_learning.h"
#include "baselines/default_detector.h"
#include "baselines/topofilter.h"
#include "data/noise.h"
#include "enld/framework.h"
#include "eval/experiment.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace enld {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

EnldConfig FastEnldConfig() {
  EnldConfig config;
  config.general = TinyGeneralConfig();
  config.iterations = 3;
  config.steps_per_iteration = 3;
  return config;
}

TEST(IntegrationTest, AllDetectorsCompleteOnSameStream) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  std::vector<std::unique_ptr<NoisyLabelDetector>> detectors;
  detectors.push_back(std::make_unique<DefaultDetector>(TinyGeneralConfig()));
  detectors.push_back(std::make_unique<ConfidentLearningDetector>(
      TinyGeneralConfig(), ClVariant::kPruneByClass));
  detectors.push_back(std::make_unique<ConfidentLearningDetector>(
      TinyGeneralConfig(), ClVariant::kPruneByNoiseRate));
  TopofilterConfig topo;
  topo.train.epochs = 5;
  detectors.push_back(std::make_unique<TopofilterDetector>(topo));
  detectors.push_back(std::make_unique<EnldFramework>(FastEnldConfig()));

  for (auto& detector : detectors) {
    const MethodRunResult run = RunDetector(detector.get(), workload);
    const DetectionMetrics avg = run.average();
    EXPECT_GT(avg.f1, 0.25) << detector->name();
    EXPECT_EQ(run.per_dataset.size(), workload.incremental.size());
  }
}

TEST(IntegrationTest, EnldBestOrNearBestAtModerateNoise) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  EnldFramework enld(FastEnldConfig());
  DefaultDetector fallback(TinyGeneralConfig());
  const double enld_f1 = RunDetector(&enld, workload).average().f1;
  const double default_f1 = RunDetector(&fallback, workload).average().f1;
  EXPECT_GT(enld_f1, default_f1);
}

TEST(IntegrationTest, EnldFasterThanTopofilterPerRequest) {
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  EnldFramework enld(FastEnldConfig());
  TopofilterDetector topo((TopofilterConfig()));
  const double enld_time =
      RunDetector(&enld, workload).average_process_seconds();
  const double topo_time =
      RunDetector(&topo, workload).average_process_seconds();
  // The paper's efficiency claim: fine-tuning beats per-request training.
  EXPECT_LT(enld_time, topo_time);
}

TEST(IntegrationTest, QualityDegradesWithNoiseRate) {
  auto f1_at = [](double noise) {
    const Workload workload = BuildWorkload(TinyWorkloadConfig(noise));
    EnldFramework enld(FastEnldConfig());
    return RunDetector(&enld, workload).average().f1;
  };
  EXPECT_GT(f1_at(0.1), f1_at(0.4));
}

TEST(IntegrationTest, ContinuousOperationWithModelUpdate) {
  // The deployment loop of Fig. 1: detect over the stream, refresh the
  // general model from the accumulated clean inventory, keep detecting.
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload.inventory);
  for (const Dataset& d : workload.incremental) enld.Detect(d);
  ASSERT_TRUE(enld.UpdateModel().ok());
  for (const Dataset& d : workload.incremental) {
    const DetectionResult result = enld.Detect(d);
    EXPECT_EQ(result.clean_indices.size() + result.noisy_indices.size(),
              d.size());
  }
}

TEST(IntegrationTest, ModelUpdateTrainsOnCleanSelection) {
  // Table II's full-scale improvement is reproduced by
  // bench_table2_model_update; at this test's tiny scale (3 datasets over
  // a few classes) the selected set is too small to beat the original, so
  // assert that the update trains a *functional* model far above chance.
  const Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload.inventory);
  for (const Dataset& d : workload.incremental) enld.Detect(d);
  ASSERT_TRUE(enld.UpdateModel().ok());
  double after = 0.0;
  for (const Dataset& d : workload.incremental) {
    after += AccuracyAgainstTrue(enld.general_model(), d);
  }
  after /= workload.incremental.size();
  EXPECT_GT(after, 3.0 / workload.inventory.num_classes);
}

TEST(IntegrationTest, MissingLabelPipelineEndToEnd) {
  Workload workload = BuildWorkload(TinyWorkloadConfig(0.2));
  Rng rng(77);
  std::vector<std::vector<size_t>> masked;
  for (Dataset& d : workload.incremental) {
    masked.push_back(MaskMissingLabels(&d, 0.25, rng));
  }
  EnldFramework enld(FastEnldConfig());
  enld.Setup(workload.inventory);
  double recovery = 0.0;
  for (size_t i = 0; i < workload.incremental.size(); ++i) {
    const DetectionResult result = enld.Detect(workload.incremental[i]);
    recovery += PseudoLabelAccuracy(workload.incremental[i],
                                    result.recovered_labels, masked[i]);
  }
  recovery /= workload.incremental.size();
  EXPECT_GT(recovery, 0.5);
}

TEST(IntegrationTest, FullyDeterministicPipeline) {
  auto run = [] {
    const Workload workload = BuildWorkload(TinyWorkloadConfig(0.3));
    EnldFramework enld(FastEnldConfig());
    enld.Setup(workload.inventory);
    std::vector<size_t> signature;
    for (const Dataset& d : workload.incremental) {
      const DetectionResult r = enld.Detect(d);
      signature.push_back(r.noisy_indices.size());
      for (size_t i : r.noisy_indices) signature.push_back(i);
    }
    return signature;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace enld
