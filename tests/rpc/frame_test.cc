// Frame codec coverage (docs/SERVING.md §1–2): byte round-trips of the
// frame prefix and every payload body, plus the typed error contract —
// protocol violations (bad magic, foreign byte order, unknown version or
// type, oversized declarations, trailing bytes) read as InvalidArgument,
// while anything a resend could repair (truncation, CRC damage anywhere)
// reads as Unavailable and counts rpc/crc_failures.

#include "rpc/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/telemetry/metrics.h"
#include "data/workload.h"
#include "rpc/message.h"
#include "store/io.h"
#include "test_util.h"

namespace enld {
namespace rpc {
namespace {

FrameHeader RequestHeader() {
  FrameHeader header;
  header.type = FrameType::kDetectRequest;
  header.sequence = 0x0123456789abcdefull;
  header.request_id = 0xfeedfacecafef00dull;
  header.deadline_seconds = 2.5;
  return header;
}

/// Rewrites the header CRC of an encoded v2 frame so deliberate field
/// edits still pass the checksum — the way to reach the post-CRC
/// validation (version / type / length checks) in tests. The v2 header
/// CRC covers [0, 46) and lives at [46, 50).
void FixHeaderCrc(std::string* frame) {
  const uint32_t crc = store::Crc32(frame->data(), 46);
  std::string patched;
  store::PutU32(&patched, crc);
  frame->replace(46, 4, patched);
}

uint64_t CrcFailures() {
  return telemetry::MetricsRegistry::Global()
      .GetCounter("rpc/crc_failures")
      ->Value();
}

TEST(FrameCodec, RoundTripsHeaderAndPayload) {
  const std::string payload = "forty-two bytes of payload, give or take";
  const std::string encoded = EncodeFrame(RequestHeader(), payload);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + payload.size());

  const StatusOr<Frame> decoded = DecodeFrame(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->header.version, kFrameVersion);
  EXPECT_EQ(decoded->header.type, FrameType::kDetectRequest);
  EXPECT_EQ(decoded->header.sequence, 0x0123456789abcdefull);
  EXPECT_EQ(decoded->header.request_id, 0xfeedfacecafef00dull);
  EXPECT_EQ(decoded->header.deadline_seconds, 2.5);
  EXPECT_EQ(decoded->header.payload_size, payload.size());
  EXPECT_EQ(decoded->payload, payload);
}

TEST(FrameCodec, RoundTripsEmptyPayload) {
  FrameHeader header;
  header.type = FrameType::kShutdown;
  const StatusOr<Frame> decoded = DecodeFrame(EncodeFrame(header, ""));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.type, FrameType::kShutdown);
  EXPECT_EQ(decoded->header.deadline_seconds, 0.0);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodec, TruncatedPrefixIsRetryable) {
  const std::string encoded = EncodeFrame(RequestHeader(), "x");
  const StatusOr<FrameHeader> decoded =
      DecodeFrameHeader(encoded.substr(0, kFrameHeaderBytes - 1));
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnavailable);
}

TEST(FrameCodec, BadMagicIsProtocolViolation) {
  std::string encoded = EncodeFrame(RequestHeader(), "x");
  encoded[0] ^= 0xff;
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, ForeignByteOrderIsProtocolViolation) {
  std::string encoded = EncodeFrame(RequestHeader(), "x");
  std::swap(encoded[8], encoded[11]);  // reverse the byte-order tag
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, FlippedHeaderBitIsRetryableNotProtocolError) {
  // A single flipped bit in the version byte must read as wire damage
  // (header CRC mismatch, retryable), NOT as "unsupported version": the
  // CRC is checked before any field is trusted.
  std::string encoded = EncodeFrame(RequestHeader(), "x");
  encoded[12] ^= 0x02;
  const uint64_t failures_before = CrcFailures();
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(CrcFailures(), failures_before + 1);
}

TEST(FrameCodec, UnsupportedVersionIsProtocolViolation) {
  // Version 3 doesn't exist yet. The decoder assumes the current (v2)
  // layout for any non-v1 version byte, so with the CRC repaired the
  // failure is the post-CRC version check — a protocol violation.
  std::string encoded = EncodeFrame(RequestHeader(), "x");
  encoded[12] = 3;
  FixHeaderCrc(&encoded);
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, UnknownFrameTypeIsProtocolViolation) {
  std::string encoded = EncodeFrame(RequestHeader(), "x");
  encoded[13] = 0x7f;
  FixHeaderCrc(&encoded);
  EXPECT_FALSE(IsKnownFrameType(0x7f));
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, OversizedPayloadDeclarationIsProtocolViolation) {
  std::string encoded = EncodeFrame(RequestHeader(), "x");
  std::string huge;
  store::PutU64(&huge, kMaxFramePayloadBytes + 1);
  encoded.replace(38, 8, huge);  // v2 payload length field
  FixHeaderCrc(&encoded);
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, CorruptPayloadByteIsRetryable) {
  std::string encoded = EncodeFrame(RequestHeader(), "payload bytes");
  encoded[kFrameHeaderBytes + 3] ^= 0x10;
  const uint64_t failures_before = CrcFailures();
  EXPECT_EQ(DecodeFrame(encoded).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(CrcFailures(), failures_before + 1);
}

TEST(FrameCodec, TruncatedPayloadIsRetryable) {
  const std::string encoded = EncodeFrame(RequestHeader(), "payload bytes");
  EXPECT_EQ(
      DecodeFrame(encoded.substr(0, encoded.size() - 1)).status().code(),
      StatusCode::kUnavailable);
}

TEST(FrameCodec, TrailingBytesAreProtocolViolation) {
  std::string encoded = EncodeFrame(RequestHeader(), "payload bytes");
  encoded.push_back('\0');
  EXPECT_EQ(DecodeFrame(encoded).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameCodec, V1FrameStillDecodes) {
  // Backward compatibility: a frame from a pre-request-id (v1) peer must
  // decode on a v2 endpoint with every shared field intact. The v1 header
  // has no request-id slot, so the decoded id is 0 (= untagged).
  const std::string payload = "payload from a v1 peer";
  const std::string encoded = EncodeFrameV1(RequestHeader(), payload);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytesV1 + payload.size());

  const StatusOr<Frame> decoded = DecodeFrame(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->header.version, kFrameVersionV1);
  EXPECT_EQ(decoded->header.request_id, 0u);
  EXPECT_EQ(decoded->header.type, FrameType::kDetectRequest);
  EXPECT_EQ(decoded->header.sequence, 0x0123456789abcdefull);
  EXPECT_EQ(decoded->header.deadline_seconds, 2.5);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(FrameCodec, V1TruncatedPrefixIsRetryable) {
  const std::string encoded = EncodeFrameV1(RequestHeader(), "x");
  EXPECT_EQ(DecodeFrameHeader(encoded.substr(0, kFrameHeaderBytesV1 - 1))
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(FrameCodec, V1FlippedHeaderBitIsRetryable) {
  // The v1 header CRC covers its own (shorter) span, so wire damage to a
  // v1 frame still reads as retryable on a v2 endpoint.
  std::string encoded = EncodeFrameV1(RequestHeader(), "x");
  encoded[15] ^= 0x08;  // a sequence byte in the v1 layout
  const uint64_t failures_before = CrcFailures();
  EXPECT_EQ(DecodeFrameHeader(encoded).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(CrcFailures(), failures_before + 1);
}

TEST(FrameCodec, UntaggedV2FrameDecodesWithZeroRequestId) {
  FrameHeader header;
  header.type = FrameType::kStats;
  const StatusOr<Frame> decoded = DecodeFrame(EncodeFrame(header, ""));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.type, FrameType::kStats);
  EXPECT_EQ(decoded->header.request_id, 0u);
}

TEST(MessageBodies, DetectRequestRoundTripsByteExactly) {
  const Workload workload =
      BuildWorkload(testing_util::TinyWorkloadConfig(0.2));
  const Dataset& original = workload.incremental[0];
  const std::string payload = EncodeDetectRequest(original);
  const StatusOr<Dataset> decoded = DecodeDetectRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Byte-exactness through the shard codec is the strongest equality the
  // wire can promise: re-encoding the decoded dataset reproduces the
  // payload bit for bit.
  EXPECT_EQ(EncodeDetectRequest(*decoded), payload);
}

TEST(MessageBodies, MalformedDetectRequestIsRejected) {
  EXPECT_FALSE(DecodeDetectRequest("definitely not a shard").ok());
}

TEST(MessageBodies, DetectResponseRoundTrips) {
  WireDetectResponse response;
  response.server_sequence = 7;
  response.request_id = 0xabad1deaull;
  response.service_status = Status::DeadlineExceeded("budget blown");
  response.noisy_indices = {3, 1, 4, 1, 5};
  response.clean_indices = {9, 2, 6};
  response.recovered_labels = {-1, 0, 12, -1};
  response.clean_bank_after = 1171;
  response.model_updates_after = 2;
  response.requests_after = 19;
  response.queue_seconds = 0.125;
  response.process_seconds = 1.75;

  const StatusOr<WireDetectResponse> decoded =
      DecodeDetectResponse(EncodeDetectResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->server_sequence, 7u);
  EXPECT_EQ(decoded->request_id, 0xabad1deaull);
  EXPECT_EQ(decoded->service_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->service_status.message(), "budget blown");
  EXPECT_EQ(decoded->noisy_indices, response.noisy_indices);
  EXPECT_EQ(decoded->clean_indices, response.clean_indices);
  EXPECT_EQ(decoded->recovered_labels, response.recovered_labels);
  EXPECT_EQ(decoded->clean_bank_after, 1171u);
  EXPECT_EQ(decoded->model_updates_after, 2u);
  EXPECT_EQ(decoded->requests_after, 19u);
  EXPECT_EQ(decoded->queue_seconds, 0.125);
  EXPECT_EQ(decoded->process_seconds, 1.75);
}

TEST(MessageBodies, TruncatedDetectResponseIsRejected) {
  WireDetectResponse response;
  response.noisy_indices = {1, 2, 3};
  const std::string payload = EncodeDetectResponse(response);
  for (const size_t keep : {size_t{0}, size_t{4}, payload.size() - 1}) {
    EXPECT_EQ(
        DecodeDetectResponse(payload.substr(0, keep)).status().code(),
        StatusCode::kInvalidArgument)
        << "kept " << keep << " byte(s)";
  }
}

TEST(MessageBodies, ErrorBodyRoundTrips) {
  const Status original = Status::Unavailable("frame payload CRC mismatch");
  Status carried;
  ASSERT_TRUE(DecodeErrorBody(EncodeErrorBody(original), &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kUnavailable);
  EXPECT_EQ(carried.message(), original.message());

  Status ignored;
  EXPECT_EQ(DecodeErrorBody("zz", &ignored).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rpc
}  // namespace enld
