// End-to-end serving coverage (docs/SERVING.md): a real loopback socket
// between RpcClient and RpcServer. The load-bearing properties: responses
// are byte-identical to the in-process sequential Process loop — including
// under the full rpc/* wire-fault matrix, because every injected fault
// fires before the pipeline is touched and the client's retries are
// therefore idempotent; the wire deadline header propagates into the
// platform's per-request budget; overload is shed with a retryable error;
// protocol violations are answered and the connection closed.

#include "rpc/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/telemetry/metrics.h"
#include "data/workload.h"
#include "rpc/client.h"
#include "store/json.h"
#include "test_util.h"

namespace enld {
namespace rpc {
namespace {

using testing_util::TinyGeneralConfig;
using testing_util::TinyWorkloadConfig;

DataPlatformConfig FastPlatformConfig() {
  DataPlatformConfig config;
  config.enld.general = TinyGeneralConfig();
  config.enld.iterations = 3;
  config.enld.steps_per_iteration = 3;
  return config;
}

/// Reference state after each request of the sequential in-process loop.
struct SequentialStep {
  DetectionResult result;
  size_t clean_bank = 0;
  uint64_t requests = 0;
};

std::vector<SequentialStep> RunSequential(const DataPlatformConfig& config,
                                          const Workload& workload) {
  DataPlatform platform(config);
  EXPECT_TRUE(platform.Initialize(workload.inventory).ok());
  std::vector<SequentialStep> steps;
  for (const Dataset& d : workload.incremental) {
    const auto result = platform.Process(d);
    EXPECT_TRUE(result.ok());
    SequentialStep step;
    step.result = result.value();
    step.clean_bank = platform.framework().selected_clean_count();
    step.requests = platform.stats().requests;
    steps.push_back(std::move(step));
  }
  return steps;
}

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(BuildWorkload(TinyWorkloadConfig(0.2)));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  void SetUp() override { faults::Clear(); }
  void TearDown() override {
    faults::Clear();
    server_.reset();
    platform_.reset();
  }

  /// Initializes a platform from the fixture workload and serves it on an
  /// ephemeral loopback port.
  void StartServer(DataPlatformConfig platform_config = FastPlatformConfig(),
                   ServerConfig server_config = ServerConfig()) {
    platform_ = std::make_unique<DataPlatform>(platform_config);
    ASSERT_TRUE(platform_->Initialize(workload_->inventory).ok());
    server_ = std::make_unique<RpcServer>(platform_.get(), server_config);
    ASSERT_TRUE(server_->Start().ok());
  }

  RpcClient MakeClient() {
    ClientConfig config;
    config.port = server_->port();
    return RpcClient(config);
  }

  /// Streams the whole workload through `client` and checks every response
  /// against the sequential reference, field for field.
  void ExpectStreamMatches(RpcClient& client,
                           const std::vector<SequentialStep>& expected) {
    for (size_t i = 0; i < workload_->incremental.size(); ++i) {
      SCOPED_TRACE("request=" + std::to_string(i));
      const StatusOr<WireDetectResponse> response =
          client.Detect(workload_->incremental[i]);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response->service_status.ok())
          << response->service_status.ToString();
      const SequentialStep& want = expected[i];
      const std::vector<uint32_t> want_noisy(
          want.result.noisy_indices.begin(), want.result.noisy_indices.end());
      const std::vector<uint32_t> want_clean(
          want.result.clean_indices.begin(), want.result.clean_indices.end());
      const std::vector<int32_t> want_recovered(
          want.result.recovered_labels.begin(),
          want.result.recovered_labels.end());
      EXPECT_EQ(response->noisy_indices, want_noisy);
      EXPECT_EQ(response->clean_indices, want_clean);
      EXPECT_EQ(response->recovered_labels, want_recovered);
      EXPECT_EQ(response->clean_bank_after, want.clean_bank);
      EXPECT_EQ(response->requests_after, want.requests);
      EXPECT_EQ(response->server_sequence, i + 1);
    }
  }

  static Workload* workload_;
  std::unique_ptr<DataPlatform> platform_;
  std::unique_ptr<RpcServer> server_;
};

Workload* ServerTest::workload_ = nullptr;

TEST_F(ServerTest, ServedStreamMatchesSequentialByteForByte) {
  const std::vector<SequentialStep> expected =
      RunSequential(FastPlatformConfig(), *workload_);
  StartServer();
  RpcClient client = MakeClient();
  ExpectStreamMatches(client, expected);

  ASSERT_TRUE(client.SendShutdown().ok());
  server_->WaitForShutdown();
  EXPECT_TRUE(server_->Shutdown().ok());
  const RpcServer::Counters counters = server_->counters();
  EXPECT_EQ(counters.requests, workload_->incremental.size());
  EXPECT_EQ(counters.responses, workload_->incremental.size());
  EXPECT_EQ(counters.wire_errors, 0u);
}

TEST_F(ServerTest, WireFaultMatrixStaysByteIdentical) {
  const std::vector<SequentialStep> expected =
      RunSequential(FastPlatformConfig(), *workload_);
  StartServer();
  // The full wire-fault matrix, every site guaranteed to fire: delays,
  // dropped requests (connection killed without a reply), truncated and
  // corrupted payloads (CRC failure error frames). All fire before the
  // pipeline sees the request, so the client's resends are idempotent and
  // the served stream must still match the fault-free sequential run.
  faults::ArmSite("rpc/delay", 1.0, /*max_fires=*/2, /*burst_limit=*/0);
  faults::ArmSite("rpc/drop_frame", 1.0, /*max_fires=*/1, /*burst_limit=*/0);
  faults::ArmSite("rpc/truncate_frame", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  faults::ArmSite("rpc/corrupt_frame", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);

  RpcClient client = MakeClient();
  ExpectStreamMatches(client, expected);

  // Every site actually fired…
  for (const faults::FaultSiteStats& site : faults::Stats()) {
    EXPECT_GT(site.fires, 0u) << site.site;
  }
  // …and the platform still served each request exactly once.
  EXPECT_EQ(platform_->stats().requests, workload_->incremental.size());
  const RpcServer::Counters counters = server_->counters();
  EXPECT_EQ(counters.dropped_frames, 1u);
  // Truncation and corruption may damage the same frame (one CRC-failure
  // error frame) or different frames (two) — at least one was reported.
  EXPECT_GE(counters.wire_errors, 1u);
  EXPECT_TRUE(server_->Shutdown().ok());
}

TEST_F(ServerTest, WireDeadlineHeaderPropagatesToPlatformBudget) {
  // No server-side default budget: only the wire header can impose one.
  StartServer();
  // The first detect stalls; the stall charges the request's whole budget,
  // so the request with a wire deadline must blow it while the
  // header-less request after it is served normally.
  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  RpcClient client = MakeClient();

  const StatusOr<WireDetectResponse> bounded =
      client.Detect(workload_->incremental[0], /*deadline_seconds=*/30.0);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->service_status.code(), StatusCode::kDeadlineExceeded);

  const StatusOr<WireDetectResponse> unbounded =
      client.Detect(workload_->incremental[1]);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  EXPECT_TRUE(unbounded->service_status.ok());

  EXPECT_EQ(server_->counters().deadline_propagated, 1u);
  ASSERT_EQ(platform_->deadline_audit().size(), 1u);
  EXPECT_EQ(platform_->deadline_audit()[0].budget_seconds, 30.0);
  EXPECT_TRUE(server_->Shutdown().ok());
}

TEST_F(ServerTest, OverloadIsShedWithRetryableError) {
  ServerConfig config;
  config.max_connections = 0;  // shed every connection at the front door
  StartServer(FastPlatformConfig(), config);

  ClientConfig client_config;
  client_config.port = server_->port();
  client_config.retry.max_attempts = 2;
  RpcClient client(client_config);
  const StatusOr<WireDetectResponse> response =
      client.Detect(workload_->incremental[0]);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server_->counters().connections_rejected, 1u);
  EXPECT_EQ(platform_->stats().requests, 0u);
  EXPECT_TRUE(server_->Shutdown().ok());
}

TEST_F(ServerTest, RequestIdIsEchoedAndThreadedIntoAudit) {
  StartServer();
  faults::ArmSite("platform/slow_detect", 1.0, /*max_fires=*/1,
                  /*burst_limit=*/0);
  RpcClient client = MakeClient();

  // A tagged request that blows its wire deadline: the id must come back
  // in the response AND land in the platform's deadline audit record.
  const StatusOr<WireDetectResponse> bounded = client.Detect(
      workload_->incremental[0], /*deadline_seconds=*/30.0,
      /*request_id=*/777);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->request_id, 777u);
  EXPECT_EQ(bounded->service_status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(platform_->deadline_audit().size(), 1u);
  EXPECT_EQ(platform_->deadline_audit()[0].request_id, 777u);

  // An untagged request echoes id 0.
  const StatusOr<WireDetectResponse> untagged =
      client.Detect(workload_->incremental[1]);
  ASSERT_TRUE(untagged.ok());
  EXPECT_EQ(untagged->request_id, 0u);
  EXPECT_TRUE(server_->Shutdown().ok());
}

TEST_F(ServerTest, StatsEndpointReportsRingAndHistograms) {
  telemetry::MetricsRegistry::Global().Reset();
  StartServer();
  RpcClient client = MakeClient();
  const size_t n = workload_->incremental.size();
  for (size_t i = 0; i < n; ++i) {
    const StatusOr<WireDetectResponse> response = client.Detect(
        workload_->incremental[i], /*deadline_seconds=*/-1.0,
        /*request_id=*/100 + i);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->request_id, 100 + i);
  }

  const StatusOr<std::string> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const StatusOr<store::JsonValue> parsed =
      store::JsonValue::Parse(stats.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const store::JsonValue& doc = parsed.value();

  ASSERT_NE(doc.Find("schema"), nullptr);
  EXPECT_EQ(doc.Find("schema")->AsString(), "enld-stats-v1");
  EXPECT_GT(doc.Find("uptime_seconds")->AsNumber(), 0.0);

  const store::JsonValue* server = doc.Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->Find("requests")->AsNumber(), static_cast<double>(n));
  EXPECT_EQ(server->Find("responses")->AsNumber(), static_cast<double>(n));
  // The scraped document was built before its own response was written.
  EXPECT_EQ(server->Find("stats_served")->AsNumber(), 0.0);

  // End-to-end latency histogram: one observation per dispatched request.
  const store::JsonValue* e2e =
      doc.Find("metrics")->Find("histograms")->Find("rpc/e2e_seconds");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->Find("count")->AsNumber(), static_cast<double>(n));
  const store::JsonValue* quantiles = e2e->Find("quantiles");
  ASSERT_NE(quantiles, nullptr);
  EXPECT_LE(quantiles->Find("p50")->AsNumber(),
            quantiles->Find("p90")->AsNumber());
  EXPECT_LE(quantiles->Find("p90")->AsNumber(),
            quantiles->Find("p99")->AsNumber());

  // The recent-request ring carries the client-set ids, oldest first.
  const store::JsonValue* recent = doc.Find("recent_requests");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->items().size(), n);
  for (size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("ring entry " + std::to_string(i));
    const store::JsonValue& entry = recent->items()[i];
    EXPECT_EQ(entry.Find("request_id")->AsNumber(),
              static_cast<double>(100 + i));
    EXPECT_EQ(entry.Find("status")->AsString(), "OK");
    EXPECT_GE(entry.Find("process_seconds")->AsNumber(), 0.0);
  }

  const store::JsonValue* pipeline = doc.Find("pipeline");
  ASSERT_NE(pipeline, nullptr);
  EXPECT_EQ(pipeline->Find("completed")->AsNumber(), static_cast<double>(n));
  EXPECT_EQ(pipeline->Find("queue_depth")->AsNumber(), 0.0);

  // Shutdown joins the handler threads, so the post-write counter update
  // is visible by the time it returns.
  EXPECT_TRUE(server_->Shutdown().ok());
  EXPECT_EQ(server_->counters().stats_served, 1u);
}

TEST_F(ServerTest, ConnectionSummariesAccumulateTotals) {
  StartServer();
  {
    RpcClient client = MakeClient();
    ASSERT_TRUE(client.Detect(workload_->incremental[0]).ok());
    ASSERT_TRUE(client.Detect(workload_->incremental[1]).ok());
  }  // destructor closes the connection; the handler files its summary
  EXPECT_TRUE(server_->Shutdown().ok());
  const std::vector<RpcServer::ConnectionSummary> summaries =
      server_->connection_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].id, 1u);
  EXPECT_EQ(summaries[0].requests, 2u);
  EXPECT_EQ(summaries[0].responses, 2u);
  EXPECT_EQ(summaries[0].errors, 0u);
  EXPECT_GT(summaries[0].bytes_read, 0u);
  EXPECT_GT(summaries[0].bytes_written, 0u);
}

TEST_F(ServerTest, ShutdownFrameDrainsAndStopsTheServer) {
  StartServer();
  RpcClient client = MakeClient();
  const StatusOr<WireDetectResponse> served =
      client.Detect(workload_->incremental[0]);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(client.SendShutdown().ok());
  server_->WaitForShutdown();  // returns because the frame arrived
  EXPECT_TRUE(server_->Shutdown().ok());

  // A fresh connection after shutdown cannot be served.
  RpcClient late = MakeClient();
  EXPECT_FALSE(late.Detect(workload_->incremental[0]).ok());
}

}  // namespace
}  // namespace rpc
}  // namespace enld
